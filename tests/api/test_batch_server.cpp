// BatchServer determinism: however requests are grouped into micro-batches
// (concurrent submitters, partial flushes, destructor drain), every future
// resolves to exactly the label a direct predict_batch over the same rows
// produces.
#include "src/api/batch_server.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/registry.hpp"
#include "test_util.hpp"

namespace memhd::api {
namespace {

struct Fixture {
  data::TrainTestSplit split;
  std::unique_ptr<Classifier> model;
  std::vector<data::Label> direct;  // predict_batch over the whole test set

  Fixture() : split(testing::tiny_multimodal(/*seed=*/31,
                                             /*train_per_class=*/40,
                                             /*test_per_class=*/25)) {
    ModelOptions opts;
    opts.dim = 256;
    opts.columns = 16;
    opts.epochs = 3;
    opts.seed = 5;
    model = make("memhd", split.train.num_features(),
                 split.train.num_classes(), opts);
    model->fit(split.train);
    direct = model->predict_batch(split.test.features());
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(BatchServer, ManualFlushMatchesDirectBatch) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  BatchServer server(*f.model, opts);

  std::vector<std::future<data::Label>> futures;
  for (std::size_t i = 0; i < f.split.test.size(); ++i)
    futures.push_back(server.submit(f.split.test.sample(i)));

  EXPECT_EQ(server.pending(), f.split.test.size());
  EXPECT_EQ(server.flush(), f.split.test.size());
  EXPECT_EQ(server.pending(), 0u);

  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].get(), f.direct[i]) << "query " << i;

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, f.split.test.size());
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.largest_batch, f.split.test.size());
}

TEST(BatchServer, PartialFlushesStayBitIdentical) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  BatchServer server(*f.model, opts);

  // Cut deliberately ragged batches: 1, 7, then the remainder.
  std::vector<std::future<data::Label>> futures;
  std::size_t i = 0;
  const auto submit_n = [&](std::size_t n) {
    for (std::size_t j = 0; j < n && i < f.split.test.size(); ++j, ++i)
      futures.push_back(server.submit(f.split.test.sample(i)));
  };
  submit_n(1);
  EXPECT_EQ(server.flush(), 1u);
  submit_n(7);
  EXPECT_EQ(server.flush(), 7u);
  submit_n(f.split.test.size());
  server.flush();
  EXPECT_EQ(server.flush(), 0u);  // nothing pending: no-op

  ASSERT_EQ(futures.size(), f.split.test.size());
  for (std::size_t q = 0; q < futures.size(); ++q)
    EXPECT_EQ(futures[q].get(), f.direct[q]) << "query " << q;
  EXPECT_EQ(server.stats().batches, 3u);
}

TEST(BatchServer, ConcurrentSubmittersMatchDirectBatch) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.max_batch = 8;
  opts.max_delay = std::chrono::microseconds(200);
  BatchServer server(*f.model, opts);

  const std::size_t n = f.split.test.size();
  std::vector<data::Label> served(n);
  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1))
        served[i] = server.submit(f.split.test.sample(i)).get();
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(served[i], f.direct[i]) << "query " << i;

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, n);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.largest_batch, n);
}

TEST(BatchServer, DestructorCompletesLeftoverRequests) {
  const auto& f = fixture();
  std::vector<std::future<data::Label>> futures;
  {
    BatchServerOptions opts;
    opts.background = false;
    BatchServer server(*f.model, opts);
    for (std::size_t i = 0; i < 5; ++i)
      futures.push_back(server.submit(f.split.test.sample(i)));
    // No flush: the destructor must drain.
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].get(), f.direct[i]);
}

TEST(BatchServer, ShardedManualFlushBitIdenticalAcrossRegistry) {
  // The sharding acceptance contract: for EVERY registry model, a batch
  // split row-wise across shard workers (each with its own pinned predict
  // context) answers exactly what one direct predict_batch would.
  const auto split = testing::tiny_multimodal(/*seed=*/33,
                                              /*train_per_class=*/30,
                                              /*test_per_class=*/15);
  ModelOptions opts;
  opts.dim = 256;
  opts.columns = 16;
  opts.epochs = 2;
  opts.num_levels = 16;
  opts.n_models = 4;
  opts.seed = 13;

  for (const auto& name : list_models()) {
    auto model = make(name, split.train.num_features(),
                      split.train.num_classes(), opts);
    model->fit(split.train);
    const auto direct = model->predict_batch(split.test.features());

    BatchServerOptions server_opts;
    server_opts.background = false;
    server_opts.shards = 3;
    server_opts.shard_quantum = 1;  // force a split on any batch > 1 row
    BatchServer server(*model, server_opts);

    std::vector<std::future<data::Label>> futures;
    for (std::size_t i = 0; i < split.test.size(); ++i)
      futures.push_back(server.submit(split.test.sample(i)));
    EXPECT_EQ(server.flush(), split.test.size()) << name;

    for (std::size_t i = 0; i < futures.size(); ++i)
      EXPECT_EQ(futures[i].get(), direct[i]) << name << " query " << i;

    const auto stats = server.stats();
    EXPECT_EQ(stats.batches, 1u) << name;
    EXPECT_EQ(stats.sharded_batches, 1u) << name;
    EXPECT_EQ(stats.shard_jobs, 3u) << name;
  }
}

TEST(BatchServer, ShardedConcurrentSubmittersMatchDirectBatch) {
  // The multi-threaded mirror of ConcurrentSubmittersMatchDirectBatch with
  // the shard set engaged: submitters race the batching window, batches
  // race each other onto the shard workers, answers stay bit-identical.
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.max_batch = 16;
  opts.max_delay = std::chrono::microseconds(200);
  opts.shards = 3;
  opts.shard_quantum = 1;  // even tiny racing batches exercise the shard set
  BatchServer server(*f.model, opts);

  const std::size_t n = f.split.test.size();
  std::vector<data::Label> served(n);
  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1))
        served[i] = server.submit(f.split.test.sample(i)).get();
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(served[i], f.direct[i]) << "query " << i;

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, n);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.shard_jobs, stats.sharded_batches);
}

TEST(BatchServer, SmallBatchesStayUnsharded) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  opts.shards = 4;
  opts.shard_quantum = 8;
  BatchServer server(*f.model, opts);

  // 5 rows <= quantum: one fused call, no shard dispatch.
  std::vector<std::future<data::Label>> futures;
  for (std::size_t i = 0; i < 5; ++i)
    futures.push_back(server.submit(f.split.test.sample(i)));
  EXPECT_EQ(server.flush(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(futures[i].get(), f.direct[i]);

  auto stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.sharded_batches, 0u);
  EXPECT_EQ(stats.shard_jobs, 0u);

  // 20 rows with quantum 8: ceil(20/8) = 3 pieces across 3 of 4 shards.
  futures.clear();
  for (std::size_t i = 0; i < 20; ++i)
    futures.push_back(server.submit(f.split.test.sample(i)));
  EXPECT_EQ(server.flush(), 20u);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(futures[i].get(), f.direct[i]);

  stats = server.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.sharded_batches, 1u);
  EXPECT_EQ(stats.shard_jobs, 3u);
}

TEST(BatchServer, ShardedDestructorCompletesLeftoverRequests) {
  const auto& f = fixture();
  std::vector<std::future<data::Label>> futures;
  {
    BatchServerOptions opts;
    opts.background = false;
    opts.shards = 3;
    opts.shard_quantum = 2;
    BatchServer server(*f.model, opts);
    for (std::size_t i = 0; i < 11; ++i)
      futures.push_back(server.submit(f.split.test.sample(i)));
    // No flush: the destructor must drain through the still-live shard set.
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].get(), f.direct[i]);
}

TEST(BatchServer, FlushRaceDoesNotCutNextWindowEarly) {
  // Regression for the stale-deadline bug: a flush() that drains the queue
  // mid-window used to leave the worker waiting on the FLUSHED batch's
  // deadline, so the next request's batch was cut after only the remainder
  // of the old window. The fixed worker re-derives the deadline from the
  // current head request, so a lone follow-up request waits out its own
  // full max_delay before being cut.
  const auto& f = fixture();
  const auto window = std::chrono::milliseconds(200);
  BatchServerOptions opts;
  opts.max_batch = 64;  // never fills: the delay is what cuts
  opts.max_delay = window;
  BatchServer server(*f.model, opts);

  auto first = server.submit(f.split.test.sample(0));
  // Let the worker enter the batching window for the first request, then
  // steal that batch out from under it.
  std::this_thread::sleep_for(window / 2);
  server.flush();
  EXPECT_EQ(first.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(first.get(), f.direct[0]);

  const auto t0 = std::chrono::steady_clock::now();
  auto second = server.submit(f.split.test.sample(1));
  ASSERT_EQ(second.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(second.get(), f.direct[1]);
  // With the stale deadline the cut lands ~window/2 after submission; the
  // fixed worker holds the batch open for the full fresh window. 60% is
  // far from both outcomes, so scheduler jitter cannot flip the verdict.
  EXPECT_GE(waited, window * 6 / 10)
      << "second request's window was cut prematurely";
}

// Completed-with-ServeError helper: asserts the future is errored and
// returns the code (0-equivalent on unexpected outcomes, with a failure).
api::ServeErrc serve_error_code(std::future<data::Label>& future) {
  try {
    const data::Label label = future.get();
    ADD_FAILURE() << "future unexpectedly completed with label " << label;
  } catch (const ServeError& e) {
    return e.code();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "future carried a non-ServeError: " << e.what();
  }
  return static_cast<api::ServeErrc>(0);
}

TEST(BatchServer, QueueFullRejectsImmediatelyWithTypedError) {
  // Overload acceptance: fill the queue to max_pending, then the N+1th
  // submit must resolve IMMEDIATELY (not block, not enqueue) with a
  // distinguishable error, and stats().rejected must count exactly the
  // rejects.
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;  // nothing drains: the queue can only fill
  opts.max_pending = 4;
  BatchServer server(*f.model, opts);

  std::vector<std::future<data::Label>> admitted;
  for (std::size_t i = 0; i < 4; ++i)
    admitted.push_back(server.submit(f.split.test.sample(i)));
  EXPECT_EQ(server.pending(), 4u);

  std::vector<std::future<data::Label>> rejected;
  for (std::size_t i = 0; i < 3; ++i)
    rejected.push_back(server.submit(f.split.test.sample(4 + i)));
  EXPECT_EQ(server.pending(), 4u) << "rejects must not enqueue";
  for (auto& future : rejected) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "a queue-full reject must be an immediately-errored future";
    EXPECT_EQ(serve_error_code(future), ServeErrc::kQueueFull);
  }

  EXPECT_EQ(server.flush(), 4u);
  for (std::size_t i = 0; i < admitted.size(); ++i)
    EXPECT_EQ(admitted[i].get(), f.direct[i]) << "admitted query " << i;

  const auto stats = server.stats();
  EXPECT_EQ(stats.rejected, 3u) << "rejected must count exactly the rejects";
  EXPECT_EQ(stats.requests, 4u) << "rejects are not admitted requests";
  EXPECT_EQ(stats.queue_depth_peak, 4u);
}

TEST(BatchServer, EvictOldestAdmitsNewAndFailsOldest) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  opts.max_pending = 2;
  opts.overload = OverloadPolicy::kEvictOldest;
  BatchServer server(*f.model, opts);

  auto first = server.submit(f.split.test.sample(0));
  auto second = server.submit(f.split.test.sample(1));
  auto third = server.submit(f.split.test.sample(2));  // evicts `first`

  ASSERT_EQ(first.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(serve_error_code(first), ServeErrc::kQueueFull);
  EXPECT_EQ(server.pending(), 2u);

  EXPECT_EQ(server.flush(), 2u);
  EXPECT_EQ(second.get(), f.direct[1]);
  EXPECT_EQ(third.get(), f.direct[2]);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().requests, 3u) << "evict admits the new request";
}

TEST(BatchServer, DeadlineExpiredIsShedNotScored) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  BatchServer server(*f.model, opts);

  // Already-expired deadline: must be shed at the cut with a timeout
  // error; the fresh-deadline and no-deadline requests still score.
  const auto now = BatchServer::Clock::now();
  auto expired = server.submit(f.split.test.sample(0),
                               now - std::chrono::milliseconds(1));
  auto fresh = server.submit(f.split.test.sample(1),
                             now + std::chrono::hours(1));
  auto unbounded = server.submit(f.split.test.sample(2));

  EXPECT_EQ(server.flush(), 3u);
  EXPECT_EQ(serve_error_code(expired), ServeErrc::kDeadlineExceeded);
  EXPECT_EQ(fresh.get(), f.direct[1]);
  EXPECT_EQ(unbounded.get(), f.direct[2]);

  const auto stats = server.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(BatchServer, DrainCompletesAdmittedThenFailsFast) {
  // The shutdown contract: drain() completes every admitted promise, and
  // every submit after it resolves immediately with kStopped instead of
  // enqueueing into a dying server.
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.max_batch = 8;
  opts.shards = 2;
  opts.shard_quantum = 2;
  BatchServer server(*f.model, opts);

  std::vector<std::future<data::Label>> futures;
  for (std::size_t i = 0; i < 20; ++i)
    futures.push_back(server.submit(f.split.test.sample(i)));

  server.drain();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "drain() returned with promise " << i << " incomplete";
    EXPECT_EQ(futures[i].get(), f.direct[i]) << "query " << i;
  }

  auto late = server.submit(f.split.test.sample(0));
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "submit after drain must fail fast, not block or enqueue";
  EXPECT_EQ(serve_error_code(late), ServeErrc::kStopped);
  EXPECT_EQ(server.pending(), 0u);

  server.drain();  // idempotent
}

TEST(BatchServer, DrainRacingShardedFlushCompletesEveryFuture) {
  // Regression: stop_shards() used to free the shard set without
  // synchronizing with a concurrent manual flush() mid-dispatch — the
  // dispatcher could wait on a Shard mutex/cv that drain() had already
  // destroyed (use-after-free under ASan/TSan). Teardown now takes the
  // dispatch mutex, and a flush that loses the race scores inline.
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  opts.shards = 4;
  opts.shard_quantum = 1;  // every multi-row batch dispatches to the shards
  const std::size_t n = std::min<std::size_t>(f.split.test.size(), 24);
  for (int round = 0; round < 25; ++round) {
    BatchServer server(*f.model, opts);
    std::vector<std::future<data::Label>> futures;
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(server.submit(f.split.test.sample(i)));
    std::thread flusher([&] { server.flush(); });
    server.drain();
    flusher.join();
    // Whichever side cut the batch, every admitted request scores.
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(futures[i].get(), f.direct[i])
          << "round " << round << " query " << i;
  }
}

TEST(BatchServer, RacingFlushersCutDisjointBatches) {
  // Regression for the manual-mode flush race: two flushers hammering the
  // cut concurrently with live submitters must take disjoint batches —
  // every future completes exactly once with the direct-batch label, the
  // flush sizes sum to the request count, and the stats agree.
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  BatchServer server(*f.model, opts);

  const std::size_t n = f.split.test.size();
  std::vector<std::future<data::Label>> futures(n);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> flushed_total{0};
  std::atomic<std::uint64_t> nonempty_flushes{0};

  std::thread flusher_a([&] {
    while (!done.load()) {
      const std::size_t cut = server.flush();
      flushed_total.fetch_add(cut);
      if (cut > 0) nonempty_flushes.fetch_add(1);
    }
  });
  std::thread flusher_b([&] {
    while (!done.load()) {
      const std::size_t cut = server.flush();
      flushed_total.fetch_add(cut);
      if (cut > 0) nonempty_flushes.fetch_add(1);
    }
  });

  for (std::size_t i = 0; i < n; ++i)
    futures[i] = server.submit(f.split.test.sample(i));

  // Everything must come out exactly once, with the right answer.
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(futures[i].get(), f.direct[i]) << "query " << i;
  done.store(true);
  flusher_a.join();
  flusher_b.join();
  flushed_total.fetch_add(server.flush());  // any raced leftover

  EXPECT_EQ(flushed_total.load(), n)
      << "racing flushers double-took or dropped requests";
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, n);
  EXPECT_EQ(stats.batches, nonempty_flushes.load())
      << "batch cuts and nonempty flushes must agree";
}

TEST(BatchServer, QueueDepthPeakTracksHighWater) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  BatchServer server(*f.model, opts);

  for (std::size_t i = 0; i < 7; ++i)
    (void)server.submit(f.split.test.sample(i));
  EXPECT_EQ(server.stats().queue_depth_peak, 7u);
  server.flush();
  for (std::size_t i = 0; i < 3; ++i)
    (void)server.submit(f.split.test.sample(i));
  server.flush();
  EXPECT_EQ(server.stats().queue_depth_peak, 7u) << "peak is a high-water mark";
}

TEST(BatchServer, RejectsWrongFeatureLength) {
  const auto& f = fixture();
  BatchServerOptions opts;
  opts.background = false;
  BatchServer server(*f.model, opts);
  const std::vector<float> wrong(f.model->num_features() + 1, 0.0f);
  EXPECT_THROW(server.submit(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace memhd::api
