// The registry-wide Classifier contract: every model api::make can build
// must (a) predict_batch bit-identically to per-sample predict, and
// (b) round-trip through the tagged save/load format bit-exactly.
#include "src/api/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/adapters.hpp"
#include "test_util.hpp"

namespace memhd::api {
namespace {

/// Small-but-trainable options per model kind (the shared synthetic task
/// has 64 features and 4 classes).
api::ModelOptions small_options(core::ModelKind kind) {
  api::ModelOptions opts;
  opts.dim = 256;
  opts.epochs = 3;
  opts.num_levels = 16;
  opts.n_models = 4;
  opts.seed = 9;
  switch (kind) {
    case core::ModelKind::kMemhd:
      opts.columns = 16;
      break;
    case core::ModelKind::kBasicHDC:
      opts.epochs = 0;  // the paper's BasicHDC row is single-pass
      break;
    case core::ModelKind::kLeHDC:
      opts.epochs = 2;
      opts.learning_rate = 0.01f;
      break;
    default:
      break;
  }
  return opts;
}

std::string temp_model_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class RegistryContract : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryContract, BatchIsBitIdenticalToPerSamplePredict) {
  const auto split = testing::tiny_multimodal(/*seed=*/21,
                                              /*train_per_class=*/40,
                                              /*test_per_class=*/20);
  const auto* info = api::find_model(GetParam());
  ASSERT_NE(info, nullptr);

  auto model = api::make(GetParam(), split.train.num_features(),
                         split.train.num_classes(), small_options(info->kind));
  EXPECT_FALSE(model->fitted());
  model->fit(split.train);
  ASSERT_TRUE(model->fitted());
  EXPECT_EQ(model->kind(), info->kind);

  const auto batched = model->predict_batch(split.test.features());
  ASSERT_EQ(batched.size(), split.test.size());
  for (std::size_t i = 0; i < split.test.size(); ++i)
    EXPECT_EQ(batched[i], model->predict(split.test.sample(i)))
        << model->name() << " row " << i;
}

TEST_P(RegistryContract, SaveLoadRoundTripsBitExactly) {
  const auto split = testing::tiny_multimodal(/*seed=*/22,
                                              /*train_per_class=*/40,
                                              /*test_per_class=*/20);
  const auto* info = api::find_model(GetParam());
  ASSERT_NE(info, nullptr);

  auto model = api::make(GetParam(), split.train.num_features(),
                         split.train.num_classes(), small_options(info->kind));
  model->fit(split.train);

  const std::string path =
      temp_model_path("api_roundtrip_" + GetParam() + ".mhd");
  model->save(path);
  const auto reloaded = api::load(path);
  std::remove(path.c_str());

  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->kind(), model->kind());
  EXPECT_TRUE(reloaded->fitted());
  EXPECT_EQ(reloaded->num_features(), model->num_features());
  EXPECT_EQ(reloaded->num_classes(), model->num_classes());
  EXPECT_EQ(reloaded->dim(), model->dim());

  EXPECT_EQ(reloaded->predict_batch(split.test.features()),
            model->predict_batch(split.test.features()))
      << model->name();
  EXPECT_DOUBLE_EQ(reloaded->evaluate(split.test), model->evaluate(split.test));
}

TEST_P(RegistryContract, ScoresBatchHasScoreRowsPerQuery) {
  const auto split = testing::tiny_multimodal(/*seed=*/23,
                                              /*train_per_class=*/30,
                                              /*test_per_class=*/10);
  const auto* info = api::find_model(GetParam());
  ASSERT_NE(info, nullptr);

  auto model = api::make(GetParam(), split.train.num_features(),
                         split.train.num_classes(), small_options(info->kind));
  model->fit(split.train);

  ASSERT_GE(model->score_rows(), split.train.num_classes());
  std::vector<std::uint32_t> scores;
  model->scores_batch(split.test.features(), scores);
  EXPECT_EQ(scores.size(), split.test.size() * model->score_rows());
}

TEST_P(RegistryContract, PredictBatchIntoMatchesPredictBatch) {
  // The serve-path hook: with and without a pinned context — and with the
  // SAME context reused across calls, the BatchServer shard-worker shape —
  // predict_batch_into must reproduce predict_batch bit for bit.
  const auto split = testing::tiny_multimodal(/*seed=*/24,
                                              /*train_per_class=*/30,
                                              /*test_per_class=*/12);
  const auto* info = api::find_model(GetParam());
  ASSERT_NE(info, nullptr);

  auto model = api::make(GetParam(), split.train.num_features(),
                         split.train.num_classes(), small_options(info->kind));
  model->fit(split.train);
  const auto direct = model->predict_batch(split.test.features());

  std::vector<data::Label> out(split.test.size());
  model->predict_batch_into(split.test.features(), out);
  EXPECT_EQ(out, direct) << model->name() << " (no context)";

  const auto context = model->make_predict_context();
  for (int round = 0; round < 2; ++round) {
    std::fill(out.begin(), out.end(), data::Label{0xFFFF});
    model->predict_batch_into(split.test.features(), out, context.get());
    EXPECT_EQ(out, direct) << model->name() << " context round " << round;
  }
}

TEST_P(RegistryContract, MemoryBreakdownIsPopulated) {
  const auto* info = api::find_model(GetParam());
  ASSERT_NE(info, nullptr);
  auto model = api::make(GetParam(), 64, 4, small_options(info->kind));
  const auto mem = model->memory();
  EXPECT_GT(mem.encoder_bits, 0u);
  EXPECT_GT(mem.am_bits, 0u);
  EXPECT_EQ(mem.total_bits(), mem.encoder_bits + mem.am_bits);
}

INSTANTIATE_TEST_SUITE_P(AllModels, RegistryContract,
                         ::testing::ValuesIn(api::list_models()),
                         [](const auto& info) { return info.param; });

TEST(ApiRegistry, ListsFiveModelsInTableOrder) {
  const auto names = api::list_models();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.front(), "searchd");
  EXPECT_EQ(names.back(), "memhd");
}

TEST(ApiRegistry, FindModelIsCaseInsensitive) {
  EXPECT_NE(api::find_model("MEMHD"), nullptr);
  EXPECT_NE(api::find_model("LeHDC"), nullptr);
  EXPECT_EQ(api::find_model("not-a-model"), nullptr);
}

TEST(ApiRegistry, MakeRejectsUnknownNames) {
  EXPECT_THROW(api::make("hal9000", 8, 2, {}), std::invalid_argument);
}

TEST(ApiRegistry, ZeroColumnsMeansSquareMemhd) {
  api::ModelOptions opts;
  opts.dim = 64;
  opts.columns = 0;
  EXPECT_EQ(opts.memhd().columns, 64u);
  opts.columns = 16;
  EXPECT_EQ(opts.memhd().columns, 16u);
}

TEST(ApiRegistry, AdapterExposesTheWrappedModel) {
  api::ModelOptions opts = small_options(core::ModelKind::kMemhd);
  auto model = api::make("memhd", 64, 4, opts);
  auto* adapter = dynamic_cast<api::MemhdClassifier*>(model.get());
  ASSERT_NE(adapter, nullptr);
  EXPECT_EQ(adapter->model().config().columns, opts.columns);
}

TEST(ApiRegistry, DegenerateShapesThrowTypedConfigError) {
  // num_features == 0 and dim == 0 must be catchable errors at the API
  // boundary, not contract aborts.
  api::ModelOptions opts;
  EXPECT_THROW(api::make("memhd", 0, 4, opts), hdc::ConfigError);
  EXPECT_THROW(api::make("basichdc", 0, 4, opts), hdc::ConfigError);
  opts.dim = 0;
  EXPECT_THROW(api::make("memhd", 64, 4, opts), hdc::ConfigError);
  EXPECT_THROW(api::make("quanthd", 64, 4, opts), hdc::ConfigError);
  // ConfigError IS an invalid_argument, so generic handlers still work.
  EXPECT_THROW(api::make("memhd", 0, 4, api::ModelOptions{}),
               std::invalid_argument);
}

TEST(ApiRegistry, RematOptionFlowsThroughRegistryBitIdentically) {
  const auto split = testing::tiny_multimodal(/*seed=*/27,
                                              /*train_per_class=*/30,
                                              /*test_per_class=*/15);
  for (const char* name : {"memhd", "basichdc"}) {
    auto opts = small_options(api::find_model(name)->kind);
    auto mat = api::make(name, split.train.num_features(),
                         split.train.num_classes(), opts);
    opts.basis = hdc::BasisKind::kRematerialized;
    auto rem = api::make(name, split.train.num_features(),
                         split.train.num_classes(), opts);
    mat->fit(split.train);
    rem->fit(split.train);
    EXPECT_EQ(rem->predict_batch(split.test.features()),
              mat->predict_batch(split.test.features()))
        << name;
    // The resident split shows up in the memory breakdown; model bits
    // stay equal (Table I counts the deployed plane, not software bytes).
    const auto mm = mat->memory();
    const auto rm = rem->memory();
    EXPECT_EQ(mm.encoder_bits, rm.encoder_bits) << name;
    EXPECT_GT(mm.encoder_resident_bytes, rm.encoder_resident_bytes * 100)
        << name;
  }
}

TEST(ApiSerialize, LegacyBaselineFrameLoadsWithSequentialDerivation) {
  // A pre-seam MHDAPI01 BasicHDC container (no basis bytes in the frame)
  // must load with the legacy sequential derivation and predict exactly
  // what it predicted when written.
  const auto split = testing::tiny_multimodal(/*seed=*/28,
                                              /*train_per_class=*/30,
                                              /*test_per_class=*/15);
  baselines::BaselineConfig cfg;
  cfg.dim = 256;
  cfg.epochs = 0;
  cfg.seed = 9;
  cfg.basis_derivation = hdc::BasisDerivation::kLegacySequential;
  auto legacy = std::make_unique<BaselineClassifier>(baselines::make_baseline(
      core::ModelKind::kBasicHDC, split.train.num_features(),
      split.train.num_classes(), cfg));
  legacy->model().fit(split.train);
  const auto expected = legacy->predict_batch(split.test.features());

  const std::string path = temp_model_path("api_legacy_frame.mhd");
  api::save(*legacy, path);
  // Rewrite the MHDAPI03 container as MHDAPI01: magic revision back to 1
  // and the two basis bytes (at offset magic 8 + tag 1 + u64*7 + f32 = 69)
  // spliced out.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 71u);
  ASSERT_EQ(bytes.substr(0, 8), "MHDAPI03");
  bytes[7] = '1';
  bytes.erase(69, 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const auto loaded = api::load(path);
  std::remove(path.c_str());
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->predict_batch(split.test.features()), expected);
  const auto* adapter = dynamic_cast<const BaselineClassifier*>(loaded.get());
  ASSERT_NE(adapter, nullptr);
  EXPECT_EQ(adapter->model().config().basis_derivation,
            hdc::BasisDerivation::kLegacySequential);
}

TEST(ApiSerialize, LoadRejectsGarbage) {
  const std::string path = temp_model_path("api_garbage.mhd");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a model", f);
  std::fclose(f);
  EXPECT_THROW(api::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ApiSerialize, LoadThrowsOnCorruptFrameInsteadOfAborting) {
  // Valid magic + kind tag, zeroed config/shape frame: must surface as the
  // documented runtime_error, not as a contract abort deeper in the stack.
  const std::string path = temp_model_path("api_zero_frame.mhd");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("MHDAPI01", f);
  const char zeros[1 + 7 * 8 + 4] = {};  // tag 0 (BasicHDC) + empty frame
  std::fwrite(zeros, 1, sizeof(zeros), f);
  std::fclose(f);
  EXPECT_THROW(api::load(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memhd::api
