#include "src/baselines/basic_hdc.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace memhd::baselines {
namespace {

BaselineConfig small_config() {
  BaselineConfig cfg;
  cfg.dim = 512;
  cfg.epochs = 0;  // the paper's BasicHDC is single-pass
  return cfg;
}

TEST(BasicHdc, LearnsSeparableTask) {
  const auto split = testing::tiny_separable();
  BasicHdc model(split.train.num_features(), split.train.num_classes(),
                 small_config());
  model.fit(split.train);
  EXPECT_GT(model.evaluate(split.test), 0.9);
}

TEST(BasicHdc, NameAndKind) {
  BasicHdc model(8, 2, small_config());
  EXPECT_STREQ(model.name(), "BasicHDC");
  EXPECT_EQ(model.kind(), core::ModelKind::kBasicHDC);
  EXPECT_EQ(model.dim(), 512u);
}

TEST(BasicHdc, MemoryMatchesTableOne) {
  BaselineConfig cfg;
  cfg.dim = 10240;
  BasicHdc model(784, 10, cfg);
  const auto mem = model.memory();
  EXPECT_EQ(mem.encoder_bits, 784u * 10240u);
  EXPECT_EQ(mem.am_bits, 10u * 10240u);
}

TEST(BasicHdc, IterativeRefinementDoesNotHurtTraining) {
  const auto split = testing::tiny_multimodal();
  auto cfg = small_config();
  BasicHdc single(split.train.num_features(), split.train.num_classes(), cfg);
  single.fit(split.train);
  const double base = single.evaluate(split.train);

  cfg.epochs = 10;
  BasicHdc refined(split.train.num_features(), split.train.num_classes(), cfg);
  refined.fit(split.train);
  EXPECT_GE(refined.evaluate(split.train), base - 0.05);
}

TEST(BasicHdc, FactoryBuildsIt) {
  const auto model =
      make_baseline(core::ModelKind::kBasicHDC, 16, 3, small_config());
  EXPECT_STREQ(model->name(), "BasicHDC");
}

TEST(BasicHdc, HigherDimensionHelpsOrMatches) {
  // The HDC scaling property the paper leans on: more dimensions, better
  // (or equal) separation. Compare a tiny and a comfortable D.
  const auto split = testing::tiny_separable(/*seed=*/21);
  BaselineConfig small;
  small.dim = 32;
  small.epochs = 0;
  BaselineConfig big;
  big.dim = 1024;
  big.epochs = 0;
  BasicHdc a(split.train.num_features(), split.train.num_classes(), small);
  BasicHdc b(split.train.num_features(), split.train.num_classes(), big);
  a.fit(split.train);
  b.fit(split.train);
  EXPECT_GE(b.evaluate(split.test) + 0.05, a.evaluate(split.test));
}

}  // namespace
}  // namespace memhd::baselines
