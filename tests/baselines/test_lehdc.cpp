#include "src/baselines/lehdc.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "test_util.hpp"

namespace memhd::baselines {
namespace {

BaselineConfig small_config() {
  BaselineConfig cfg;
  cfg.dim = 256;
  cfg.epochs = 8;
  cfg.learning_rate = 0.05f;
  cfg.num_levels = 32;
  return cfg;
}

TEST(LeHdc, LearnsSeparableTask) {
  const auto split = testing::tiny_separable();
  LeHdc model(split.train.num_features(), split.train.num_classes(),
              small_config());
  model.fit(split.train);
  EXPECT_GT(model.evaluate(split.test), 0.85);
}

TEST(LeHdc, NameAndKind) {
  LeHdc model(8, 2, small_config());
  EXPECT_STREQ(model.name(), "LeHDC");
  EXPECT_EQ(model.kind(), core::ModelKind::kLeHDC);
}

TEST(LeHdc, MemoryMatchesTableOne) {
  BaselineConfig cfg;
  cfg.dim = 400;
  cfg.num_levels = 256;
  LeHdc model(784, 10, cfg);
  const auto mem = model.memory();
  EXPECT_EQ(mem.encoder_bits, (784u + 256u) * 400u);
  EXPECT_EQ(mem.am_bits, 10u * 400u);
}

TEST(LeHdc, BinaryWeightsPopulatedAfterFit) {
  const auto split = testing::tiny_separable(/*seed=*/23);
  LeHdc model(split.train.num_features(), split.train.num_classes(),
              small_config());
  model.fit(split.train);
  const auto& w = model.binary_weights();
  EXPECT_EQ(w.rows(), split.train.num_classes());
  EXPECT_EQ(w.cols(), 256u);
  EXPECT_GT(w.popcount(), 0u);
}

TEST(LeHdc, BnnTrainingBeatsWarmStartOnTrain) {
  // The gradient phase must not destroy the warm start; on the training set
  // it should match or improve it.
  const auto split = testing::tiny_multimodal(/*seed=*/19);
  auto cfg = small_config();
  cfg.epochs = 0;
  LeHdc warm(split.train.num_features(), split.train.num_classes(), cfg);
  warm.fit(split.train);
  const double base = warm.evaluate(split.train);

  cfg.epochs = 12;
  LeHdc trained(split.train.num_features(), split.train.num_classes(), cfg);
  trained.fit(split.train);
  EXPECT_GE(trained.evaluate(split.train), base - 0.02);
}

TEST(LeHdc, BatchPredictBitIdenticalToPerQuery) {
  // The batch path duplicates the corrected-argmax (2*dot - popcount(row))
  // logic; this pins the two implementations together, including on the
  // tie-heavy regime of random queries far from every class vector.
  const auto split = testing::tiny_separable(23);
  LeHdc model(split.train.num_features(), split.train.num_classes(),
              small_config());
  model.fit(split.train);

  common::Rng rng(41);
  std::vector<common::BitVector> queries;
  for (int i = 0; i < 40; ++i)
    queries.push_back(common::BitVector::random(model.dim(), rng));

  const auto batch = model.predict_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    ASSERT_EQ(batch[q], model.predict(queries[q])) << "q=" << q;
}

TEST(LeHdc, FactoryBuildsItAndRejectsMemhd) {
  const auto model =
      make_baseline(core::ModelKind::kLeHDC, 16, 3, small_config());
  EXPECT_STREQ(model->name(), "LeHDC");
  EXPECT_THROW(make_baseline(core::ModelKind::kMemhd, 16, 3, small_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace memhd::baselines
