#include "src/baselines/quanthd.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace memhd::baselines {
namespace {

BaselineConfig small_config() {
  BaselineConfig cfg;
  cfg.dim = 512;
  cfg.epochs = 10;
  cfg.learning_rate = 0.1f;
  cfg.num_levels = 32;  // plenty for the tiny tasks; cheaper than 256
  return cfg;
}

TEST(QuantHd, LearnsSeparableTask) {
  const auto split = testing::tiny_separable();
  QuantHd model(split.train.num_features(), split.train.num_classes(),
                small_config());
  model.fit(split.train);
  EXPECT_GT(model.evaluate(split.test), 0.85);
}

TEST(QuantHd, NameAndKind) {
  QuantHd model(8, 2, small_config());
  EXPECT_STREQ(model.name(), "QuantHD");
  EXPECT_EQ(model.kind(), core::ModelKind::kQuantHD);
}

TEST(QuantHd, MemoryMatchesTableOne) {
  BaselineConfig cfg;
  cfg.dim = 1600;
  cfg.num_levels = 256;
  QuantHd model(784, 10, cfg);
  const auto mem = model.memory();
  EXPECT_EQ(mem.encoder_bits, (784u + 256u) * 1600u);
  EXPECT_EQ(mem.am_bits, 10u * 1600u);
}

TEST(QuantHd, TrainingImprovesOnMultiModalOverPureSinglePass) {
  const auto split = testing::tiny_multimodal(/*seed=*/13);
  auto cfg = small_config();
  cfg.epochs = 0;  // degenerate: single-pass only
  QuantHd single(split.train.num_features(), split.train.num_classes(), cfg);
  single.fit(split.train);
  const double base = single.evaluate(split.train);

  cfg.epochs = 15;
  QuantHd trained(split.train.num_features(), split.train.num_classes(), cfg);
  trained.fit(split.train);
  EXPECT_GE(trained.evaluate(split.train), base - 0.02);
}

TEST(QuantHd, FactoryBuildsIt) {
  const auto model =
      make_baseline(core::ModelKind::kQuantHD, 16, 3, small_config());
  EXPECT_STREQ(model->name(), "QuantHD");
}

}  // namespace
}  // namespace memhd::baselines
