#include "src/baselines/searchd.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "test_util.hpp"

namespace memhd::baselines {
namespace {

BaselineConfig small_config() {
  BaselineConfig cfg;
  cfg.dim = 512;
  cfg.n_models = 8;
  cfg.num_levels = 32;
  return cfg;
}

TEST(SearcHd, LearnsSeparableTask) {
  const auto split = testing::tiny_separable();
  SearcHd model(split.train.num_features(), split.train.num_classes(),
                small_config());
  model.fit(split.train);
  EXPECT_GT(model.evaluate(split.test), 0.8);
}

TEST(SearcHd, NameKindAndN) {
  SearcHd model(8, 2, small_config());
  EXPECT_STREQ(model.name(), "SearcHD");
  EXPECT_EQ(model.kind(), core::ModelKind::kSearcHD);
  EXPECT_EQ(model.n_models(), 8u);
}

TEST(SearcHd, MemoryMatchesTableOneWithN) {
  BaselineConfig cfg;
  cfg.dim = 8000;
  cfg.n_models = 64;  // the paper's N
  cfg.num_levels = 256;
  SearcHd model(784, 10, cfg);
  const auto mem = model.memory();
  EXPECT_EQ(mem.encoder_bits, (784u + 256u) * 8000u);
  EXPECT_EQ(mem.am_bits, 10u * 8000u * 64u);
}

TEST(SearcHd, ModelVectorsInitializedFromClassSamples) {
  const auto split = testing::tiny_separable(/*seed=*/31);
  SearcHd model(split.train.num_features(), split.train.num_classes(),
                small_config());
  model.fit(split.train);
  // After fitting, model vectors must not be all-zero (they started from
  // encoded class samples and were updated stochastically).
  const auto v = model.model_vector(0, 0);
  EXPECT_GT(v.popcount(), 0u);
  EXPECT_LT(v.popcount(), v.size());
}

TEST(SearcHd, MultiModelBeatsSingleModelOnMultiModalData) {
  // The motivation SearcHD shares with MEMHD: one vector per class cannot
  // capture multi-modal classes; N > 1 should not be worse.
  const auto split = testing::tiny_multimodal(/*seed=*/17, 80, 40);
  auto cfg = small_config();
  cfg.n_models = 1;
  SearcHd one(split.train.num_features(), split.train.num_classes(), cfg);
  one.fit(split.train);
  const double acc1 = one.evaluate(split.test);

  cfg.n_models = 8;
  SearcHd many(split.train.num_features(), split.train.num_classes(), cfg);
  many.fit(split.train);
  const double acc8 = many.evaluate(split.test);
  EXPECT_GE(acc8 + 0.05, acc1);
}

TEST(SearcHd, BatchPredictBitIdenticalToPerQuery) {
  const auto split = testing::tiny_separable(29);
  auto cfg = small_config();
  cfg.n_models = 4;
  SearcHd model(split.train.num_features(), split.train.num_classes(), cfg);
  model.fit(split.train);

  common::Rng rng(43);
  std::vector<common::BitVector> queries;
  for (int i = 0; i < 40; ++i)
    queries.push_back(common::BitVector::random(model.dim(), rng));

  const auto batch = model.predict_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    ASSERT_EQ(batch[q], model.predict(queries[q])) << "q=" << q;
}

TEST(SearcHd, FactoryBuildsIt) {
  const auto model =
      make_baseline(core::ModelKind::kSearcHD, 16, 3, small_config());
  EXPECT_STREQ(model->name(), "SearcHD");
}

}  // namespace
}  // namespace memhd::baselines
