#include "src/clustering/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/common/rng.hpp"

namespace memhd::clustering {
namespace {

using common::Matrix;
using common::Rng;

/// Three tight blobs far apart in 2D; n per blob.
Matrix three_blobs(std::size_t per_blob, Rng& rng) {
  Matrix pts(per_blob * 3, 2);
  const float centers[3][2] = {{0.0f, 0.0f}, {20.0f, 0.0f}, {0.0f, 20.0f}};
  for (std::size_t b = 0; b < 3; ++b)
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      pts(r, 0) = centers[b][0] + static_cast<float>(rng.normal(0.0, 0.5));
      pts(r, 1) = centers[b][1] + static_cast<float>(rng.normal(0.0, 0.5));
    }
  return pts;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(3);
  const Matrix pts = three_blobs(40, rng);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.metric = Metric::kEuclidean;
  const auto result = kmeans(pts, cfg, rng);

  // Every blob must be pure: all 40 members share one cluster id.
  for (std::size_t b = 0; b < 3; ++b) {
    std::set<std::uint32_t> ids;
    for (std::size_t i = 0; i < 40; ++i)
      ids.insert(result.assignment[b * 40 + i]);
    EXPECT_EQ(ids.size(), 1u) << "blob " << b << " split across clusters";
  }
  // And the three blobs use three distinct clusters.
  std::set<std::uint32_t> all(result.assignment.begin(),
                              result.assignment.end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(KMeans, AssignmentsAndSizesConsistent) {
  Rng rng(5);
  const Matrix pts = three_blobs(20, rng);
  KMeansConfig cfg;
  cfg.k = 4;
  const auto result = kmeans(pts, cfg, rng);
  ASSERT_EQ(result.assignment.size(), pts.rows());
  ASSERT_EQ(result.cluster_sizes.size(), 4u);
  std::vector<std::size_t> recount(4, 0);
  for (const auto a : result.assignment) {
    ASSERT_LT(a, 4u);
    ++recount[a];
  }
  EXPECT_EQ(recount, result.cluster_sizes);
}

TEST(KMeans, NoEmptyClustersAfterRepair) {
  Rng rng(7);
  // Fewer natural clusters than k forces the empty-cluster path.
  const Matrix pts = three_blobs(10, rng);
  KMeansConfig cfg;
  cfg.k = 8;
  const auto result = kmeans(pts, cfg, rng);
  for (const auto s : result.cluster_sizes) EXPECT_GT(s, 0u);
}

TEST(KMeans, KEqualsOneGivesCentroidAtMean) {
  Rng rng(9);
  Matrix pts(50, 3);
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      pts(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
  KMeansConfig cfg;
  cfg.k = 1;
  const auto result = kmeans(pts, cfg, rng);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 50; ++i) mean += pts(i, j);
    mean /= 50.0;
    EXPECT_NEAR(result.centroids(0, j), mean, 1e-4);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(11);
  const Matrix pts = three_blobs(30, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 3u, 9u}) {
    Rng local(11);
    KMeansConfig cfg;
    cfg.k = k;
    cfg.metric = Metric::kEuclidean;
    const auto result = kmeans(pts, cfg, local);
    EXPECT_LT(result.inertia, prev + 1e-9) << "k=" << k;
    prev = result.inertia;
  }
}

TEST(KMeans, DotMetricAssignsByDotSimilarity) {
  Matrix centroids(2, 2);
  centroids(0, 0) = 1.0f; centroids(0, 1) = 0.0f;
  centroids(1, 0) = 0.0f; centroids(1, 1) = 1.0f;
  const std::vector<float> x = {0.9f, 0.1f};
  EXPECT_EQ(assign_point(centroids, x, Metric::kDotSimilarity), 0u);
  const std::vector<float> y = {0.1f, 2.0f};
  EXPECT_EQ(assign_point(centroids, y, Metric::kDotSimilarity), 1u);
}

TEST(KMeans, CosineMetricIgnoresMagnitude) {
  Matrix centroids(2, 2);
  centroids(0, 0) = 10.0f; centroids(0, 1) = 0.0f;   // large norm, along x
  centroids(1, 0) = 0.1f;  centroids(1, 1) = 0.1f;   // small norm, diagonal
  const std::vector<float> diag = {1.0f, 1.0f};
  EXPECT_EQ(assign_point(centroids, diag, Metric::kCosine), 1u);
  // Dot similarity would pick the large centroid instead.
  EXPECT_EQ(assign_point(centroids, diag, Metric::kDotSimilarity), 0u);
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng ra(21), rb(21);
  Rng gen(13);
  const Matrix pts = three_blobs(20, gen);
  KMeansConfig cfg;
  cfg.k = 3;
  const auto a = kmeans(pts, cfg, ra);
  const auto b = kmeans(pts, cfg, rb);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_TRUE(a.centroids == b.centroids);
}

TEST(KMeans, ConvergesOnStableData) {
  Rng rng(15);
  const Matrix pts = three_blobs(30, rng);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.max_iterations = 100;
  const auto result = kmeans(pts, cfg, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 100u);
}

class KMeansMetricSweep : public ::testing::TestWithParam<Metric> {};

TEST_P(KMeansMetricSweep, ProducesValidPartition) {
  Rng rng(17);
  const Matrix pts = three_blobs(15, rng);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.metric = GetParam();
  const auto result = kmeans(pts, cfg, rng);
  std::size_t total = 0;
  for (const auto s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, pts.rows());
  for (const auto a : result.assignment) EXPECT_LT(a, 3u);
}

INSTANTIATE_TEST_SUITE_P(Metrics, KMeansMetricSweep,
                         ::testing::Values(Metric::kDotSimilarity,
                                           Metric::kEuclidean,
                                           Metric::kCosine));

class KMeansSeedingSweep : public ::testing::TestWithParam<Seeding> {};

TEST_P(KMeansSeedingSweep, BlobsRecoveredUnderBothSeedings) {
  Rng rng(19);
  const Matrix pts = three_blobs(25, rng);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.metric = Metric::kEuclidean;
  cfg.seeding = GetParam();
  const auto result = kmeans(pts, cfg, rng);
  std::set<std::uint32_t> all(result.assignment.begin(),
                              result.assignment.end());
  EXPECT_EQ(all.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seedings, KMeansSeedingSweep,
                         ::testing::Values(Seeding::kRandomSamples,
                                           Seeding::kKMeansPlusPlus));

// --- k-means++ D^2-sampling fallback (regression) ------------------------
//
// seed_kmeanspp draws r = u * total and walks the weights subtracting each
// d2; floating-point residue can leave r > 0 after the full scan. The
// pre-fix code then silently kept `chosen = 0` — picking point 0 regardless
// of its distance, typically a point coinciding with an existing centroid
// (weight exactly 0), i.e. a duplicated centroid. The fallback must land on
// the *last positive-weight* point instead.

TEST(WeightedPick, ResidueFallsBackToLastPositiveWeight) {
  // r beyond the total weight models the rounding-residue branch. Index 0
  // has zero weight (a point sitting on an existing centroid): the pre-fix
  // behavior returned it; the fix must return index 2 — the last entry
  // with positive weight — and never the zero-weight entries 0 or 3.
  const std::vector<double> weights = {0.0, 2.0, 3.0, 0.0};
  EXPECT_EQ(detail::weighted_pick(weights, 10.0), 2u);
}

TEST(WeightedPick, ResidueFallbackSkipsTrailingZeroRun) {
  const std::vector<double> weights = {0.5, 0.0, 0.0, 0.0};
  EXPECT_EQ(detail::weighted_pick(weights, 2.0), 0u);
}

TEST(WeightedPick, InRangeDrawsSelectByCumulativeWeight) {
  const std::vector<double> weights = {1.0, 2.0, 0.0, 3.0};
  EXPECT_EQ(detail::weighted_pick(weights, 0.5), 0u);
  EXPECT_EQ(detail::weighted_pick(weights, 1.0), 0u);   // boundary: r <= cum
  EXPECT_EQ(detail::weighted_pick(weights, 2.5), 1u);
  EXPECT_EQ(detail::weighted_pick(weights, 3.5), 3u);   // skips zero weight
  EXPECT_EQ(detail::weighted_pick(weights, 6.0), 3u);
}

TEST(WeightedPick, ZeroDrawNeverPicksZeroWeightPoint) {
  // u == 0 gives r == 0; the pick must still land on a positive weight,
  // not on a leading zero-weight (duplicate-centroid) entry.
  const std::vector<double> weights = {0.0, 0.0, 4.0};
  EXPECT_EQ(detail::weighted_pick(weights, 0.0), 2u);
}

TEST(KMeansPlusPlus, NeverDuplicatesTheFirstCentroidOnTinyClouds) {
  // Two distinct points, k = 2: the second pick's weight vector is exactly
  // {0, d} or {d, 0}; any fallback or boundary slip that picks the
  // zero-distance point duplicates the first centroid. Sweep seeds so the
  // uniform draw covers the [0, total) boundary region densely.
  Matrix pts(2, 2);
  pts(0, 0) = 0.0f; pts(0, 1) = 0.0f;
  pts(1, 0) = 3.0f; pts(1, 1) = 4.0f;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    KMeansConfig cfg;
    cfg.k = 2;
    cfg.seeding = Seeding::kKMeansPlusPlus;
    cfg.max_iterations = 1;
    const auto result = kmeans(pts, cfg, rng);
    // Both points end up in singleton clusters => both centroids distinct.
    EXPECT_EQ(result.cluster_sizes[0], 1u) << "seed=" << seed;
    EXPECT_EQ(result.cluster_sizes[1], 1u) << "seed=" << seed;
  }
}

// --- blocked batch assignment --------------------------------------------

TEST(AssignBatch, BitIdenticalToPerPointAssignAcrossMetricsAndShapes) {
  Rng rng(31);
  for (const auto metric :
       {Metric::kDotSimilarity, Metric::kEuclidean, Metric::kCosine}) {
    // Shapes straddle the point/centroid block sizes (128 and 16).
    const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
        {1, 1, 3}, {7, 3, 5}, {128, 16, 8}, {129, 17, 8}, {300, 33, 12}};
    for (const auto& [n, k, dim] : shapes) {
      Matrix pts = Matrix::random_normal(n, dim, rng);
      Matrix centroids = Matrix::random_normal(k, dim, rng);
      std::vector<std::uint32_t> batch(n);
      assign_batch(centroids, pts, metric, batch);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(batch[i], assign_point(centroids, pts.row(i), metric))
            << "n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(AssignBatch, TiesResolveToFirstCentroidLikeAssignPoint) {
  // Duplicate centroids force exact score ties; both paths must pick the
  // first occurrence.
  Matrix centroids(3, 2);
  centroids(0, 0) = 1.0f; centroids(0, 1) = 0.0f;
  centroids(1, 0) = 1.0f; centroids(1, 1) = 0.0f;  // duplicate of 0
  centroids(2, 0) = 0.0f; centroids(2, 1) = 1.0f;
  Matrix pts(2, 2);
  pts(0, 0) = 2.0f; pts(0, 1) = 0.1f;
  pts(1, 0) = 0.1f; pts(1, 1) = 2.0f;
  std::vector<std::uint32_t> out(2);
  assign_batch(centroids, pts, Metric::kDotSimilarity, out);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(assign_point(centroids, pts.row(0), Metric::kDotSimilarity), 0u);
}

}  // namespace
}  // namespace memhd::clustering
