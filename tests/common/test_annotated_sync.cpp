// The annotated sync wrappers (src/common/sync.hpp) must behave exactly
// like the std types they wrap: same blocking, same wakeup semantics, same
// timed-wait statuses. The capability annotations are compile-time-only —
// these tests pin down that swapping std::mutex/std::condition_variable for
// common::Mutex/common::CondVar changed nothing at runtime.
#include "src/common/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace memhd::common {
namespace {

using namespace std::chrono_literals;

TEST(AnnotatedSync, MutexProvidesExclusion) {
  Mutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mutex);
        ++counter;  // torn under a broken mutex; exact under a real one
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(AnnotatedSync, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mutex;
  mutex.lock();
  std::atomic<bool> acquired{true};
  // try_lock from another thread: std::mutex::try_lock on the same thread
  // that holds the lock is UB, so probe cross-thread like real callers do.
  std::thread probe([&] { acquired.store(mutex.try_lock()); });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mutex.unlock();
  std::thread probe2([&] {
    acquired.store(mutex.try_lock());
    if (acquired.load()) mutex.unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired.load());
}

TEST(AnnotatedSync, MutexLockManualUnlockRelock) {
  Mutex mutex;
  MutexLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  {
    // The mutex really is free during the gap (hand-over-hand pattern).
    std::atomic<bool> got{false};
    std::thread probe([&] {
      if (mutex.try_lock()) {
        got.store(true);
        mutex.unlock();
      }
    });
    probe.join();
    EXPECT_TRUE(got.load());
  }
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(AnnotatedSync, CondVarWaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    {
      MutexLock lock(mutex);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(mutex);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);  // lock is held again on return, protecting the read
  }
  producer.join();
}

TEST(AnnotatedSync, CondVarWaitUntilTimesOut) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  const auto deadline = std::chrono::steady_clock::now() + 20ms;
  // Nobody notifies: must report timeout, at or after the deadline, with
  // the lock held again (same contract as std::condition_variable).
  std::cv_status status = cv.wait_until(lock, deadline);
  while (status != std::cv_status::timeout &&
         std::chrono::steady_clock::now() < deadline)
    status = cv.wait_until(lock, deadline);  // spurious wakeup: retry
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_TRUE(lock.owns_lock());
}

TEST(AnnotatedSync, CondVarWaitForNoTimeoutOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(mutex);
      ready = true;
    }
    cv.notify_all();
  });
  {
    MutexLock lock(mutex);
    // Generous timeout: the wait must return no_timeout once notified with
    // the predicate already true.
    while (!ready) {
      if (cv.wait_for(lock, 5s) == std::cv_status::timeout) break;
    }
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(AnnotatedSync, CondVarReleasesMutexDuringWait) {
  // The wait must actually release the mutex — otherwise the producer could
  // never take the lock to flip the predicate and this test would hang
  // (gtest's default timeout via CI) instead of pass.
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread producer;
  {
    MutexLock lock(mutex);
    producer = std::thread([&] {
      MutexLock inner(mutex);  // blocks until wait() releases the mutex
      ready = true;
      cv.notify_one();
    });
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

}  // namespace
}  // namespace memhd::common
