#include "src/common/bit_matrix.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace memhd::common {
namespace {

TEST(BitMatrix, ShapeAndZeroInit) {
  BitMatrix m(5, 70);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 70u);
  EXPECT_EQ(m.words_per_row(), 2u);
  EXPECT_EQ(m.popcount(), 0u);
}

TEST(BitMatrix, SetGetFlip) {
  BitMatrix m(3, 100);
  m.set(0, 0, true);
  m.set(2, 99, true);
  m.set(1, 64, true);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(2, 99));
  EXPECT_TRUE(m.get(1, 64));
  EXPECT_EQ(m.popcount(), 3u);
  m.flip(1, 64);
  EXPECT_FALSE(m.get(1, 64));
  m.set(0, 0, false);
  EXPECT_EQ(m.popcount(), 1u);
}

TEST(BitMatrix, RowVectorRoundTrip) {
  Rng rng(3);
  BitMatrix m(4, 130);
  const auto v = BitVector::random(130, rng);
  m.set_row(2, v);
  EXPECT_TRUE(m.row_vector(2) == v);
  EXPECT_EQ(m.row_vector(0).popcount(), 0u);
}

TEST(BitMatrix, RowDotMatchesVectorDot) {
  Rng rng(4);
  BitMatrix m = BitMatrix::random(6, 200, rng);
  const auto q = BitVector::random(200, rng);
  for (std::size_t r = 0; r < m.rows(); ++r)
    EXPECT_EQ(m.row_dot(r, q), m.row_vector(r).dot(q));
}

TEST(BitMatrix, MvmMatchesNaive) {
  Rng rng(5);
  BitMatrix m = BitMatrix::random(17, 93, rng);
  const auto q = BitVector::random(93, rng);
  std::vector<std::uint32_t> out;
  m.mvm(q, out);
  ASSERT_EQ(out.size(), 17u);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::uint32_t naive = 0;
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (m.get(r, c) && q.get(c)) ++naive;
    EXPECT_EQ(out[r], naive) << "row " << r;
  }
}

TEST(BitMatrix, RandomRespectsTailMask) {
  Rng rng(6);
  const BitMatrix m = BitMatrix::random(8, 65, rng);
  for (std::size_t r = 0; r < m.rows(); ++r)
    EXPECT_EQ(m.row(r)[1] >> 1, 0u) << "padding bits must stay clear";
}

TEST(BitMatrix, TransposedIsInvolution) {
  Rng rng(7);
  const BitMatrix m = BitMatrix::random(13, 37, rng);
  const BitMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 37u);
  EXPECT_EQ(t.cols(), 13u);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      EXPECT_EQ(m.get(r, c), t.get(c, r));
  EXPECT_TRUE(t.transposed() == m);
}

TEST(BitMatrix, EqualityIsValueBased) {
  Rng rng(8);
  const BitMatrix a = BitMatrix::random(4, 64, rng);
  BitMatrix b = a;
  EXPECT_TRUE(a == b);
  b.flip(3, 63);
  EXPECT_FALSE(a == b);
}

class BitMatrixMvmSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BitMatrixMvmSweep, MvmAgainstNaive) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 1000 + cols);
  const BitMatrix m = BitMatrix::random(rows, cols, rng);
  const auto q = BitVector::random(cols, rng);
  std::vector<std::uint32_t> out;
  m.mvm(q, out);
  for (std::size_t r = 0; r < rows; ++r) {
    std::uint32_t naive = 0;
    for (std::size_t c = 0; c < cols; ++c)
      if (m.get(r, c) && q.get(c)) ++naive;
    ASSERT_EQ(out[r], naive);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BitMatrixMvmSweep,
                         ::testing::Combine(::testing::Values(1, 2, 16, 33),
                                            ::testing::Values(1, 64, 65,
                                                              256)));

}  // namespace
}  // namespace memhd::common
