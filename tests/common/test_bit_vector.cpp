#include "src/common/bit_vector.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace memhd::common {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetGetFlipRoundTrip) {
  BitVector v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.set(0, false);
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, FromBoolsMatches) {
  std::vector<bool> bits = {true, false, true, true, false};
  const auto v = BitVector::from_bools(bits);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.to_bools(), bits);
}

TEST(BitVector, FromThresholdStrictlyGreater) {
  const float vals[] = {0.0f, 0.5f, 1.0f, -0.2f, 0.5001f};
  const auto v = BitVector::from_threshold(vals, 5, 0.5f);
  EXPECT_FALSE(v.get(0));
  EXPECT_FALSE(v.get(1));  // equal is not greater
  EXPECT_TRUE(v.get(2));
  EXPECT_FALSE(v.get(3));
  EXPECT_TRUE(v.get(4));
}

TEST(BitVector, DotMatchesNaive) {
  Rng rng(5);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 200u, 1024u}) {
    const auto a = BitVector::random(n, rng);
    const auto b = BitVector::random(n, rng);
    std::size_t naive = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (a.get(i) && b.get(i)) ++naive;
    EXPECT_EQ(a.dot(b), naive) << "n=" << n;
  }
}

TEST(BitVector, HammingMatchesNaive) {
  Rng rng(6);
  for (const std::size_t n : {1u, 64u, 129u, 512u}) {
    const auto a = BitVector::random(n, rng);
    const auto b = BitVector::random(n, rng);
    std::size_t naive = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (a.get(i) != b.get(i)) ++naive;
    EXPECT_EQ(a.hamming(b), naive) << "n=" << n;
  }
}

TEST(BitVector, BitwiseOperators) {
  Rng rng(7);
  const std::size_t n = 150;
  const auto a = BitVector::random(n, rng);
  const auto b = BitVector::random(n, rng);
  const auto anded = a & b;
  const auto ored = a | b;
  const auto xored = a ^ b;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(anded.get(i), a.get(i) && b.get(i));
    EXPECT_EQ(ored.get(i), a.get(i) || b.get(i));
    EXPECT_EQ(xored.get(i), a.get(i) != b.get(i));
  }
}

TEST(BitVector, ComplementKeepsTailClear) {
  // ~v must not set the padding bits past size(); popcount would leak them.
  BitVector v(70);
  const auto inv = ~v;
  EXPECT_EQ(inv.popcount(), 70u);
  EXPECT_EQ((~inv).popcount(), 0u);
}

TEST(BitVector, RandomTailIsMasked) {
  Rng rng(8);
  const auto v = BitVector::random(65, rng);
  EXPECT_LE(v.popcount(), 65u);
  // Word 1 must only use its lowest bit.
  EXPECT_EQ(v.words()[1] >> 1, 0u);
}

TEST(BitVector, FillSetsEverythingAndRespectsTail) {
  BitVector v(90);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 90u);
  v.fill(false);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, EqualityIsValueBased) {
  Rng rng(9);
  const auto a = BitVector::random(128, rng);
  auto b = a;
  EXPECT_TRUE(a == b);
  b.flip(17);
  EXPECT_FALSE(a == b);
}

TEST(BitVector, BipolarAndFloatViews) {
  std::vector<bool> bits = {true, false, true};
  const auto v = BitVector::from_bools(bits);
  std::vector<float> bip, flt;
  v.to_bipolar(bip);
  v.to_floats(flt);
  EXPECT_EQ(bip, (std::vector<float>{1.0f, -1.0f, 1.0f}));
  EXPECT_EQ(flt, (std::vector<float>{1.0f, 0.0f, 1.0f}));
}

TEST(BitVector, ToStringFormat) {
  std::vector<bool> bits = {true, false, false, true};
  EXPECT_EQ(BitVector::from_bools(bits).to_string(), "1001");
}

TEST(BitVector, RandomIsRoughlyBalanced) {
  Rng rng(10);
  const auto v = BitVector::random(4096, rng);
  EXPECT_GT(v.popcount(), 1850u);
  EXPECT_LT(v.popcount(), 2250u);
}

// Property sweep: dot/hamming identities on random pairs of many sizes.
class BitVectorProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(BitVectorProperty, DotHammingPopcountIdentity) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const auto a = BitVector::random(n, rng);
  const auto b = BitVector::random(n, rng);
  // |a| + |b| = 2*(a.b) + hamming(a,b)  for {0,1} vectors.
  EXPECT_EQ(a.popcount() + b.popcount(), 2 * a.dot(b) + a.hamming(b));
  // dot is symmetric and bounded.
  EXPECT_EQ(a.dot(b), b.dot(a));
  EXPECT_LE(a.dot(b), std::min(a.popcount(), b.popcount()));
  // hamming(a, a) == 0, dot(a, a) == |a|.
  EXPECT_EQ(a.hamming(a), 0u);
  EXPECT_EQ(a.dot(a), a.popcount());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BitVectorProperty,
    ::testing::Combine(::testing::Values(1, 7, 63, 64, 65, 127, 128, 1000),
                       ::testing::Values(1ULL, 2ULL, 3ULL)));

}  // namespace
}  // namespace memhd::common
