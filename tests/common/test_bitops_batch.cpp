#include "src/common/bitops_batch.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"

namespace memhd::common {
namespace {

std::vector<std::uint32_t> naive_scores(const BitMatrix& rows,
                                        const std::vector<BitVector>& queries,
                                        PopcountOp op) {
  std::vector<std::uint32_t> out(queries.size() * rows.rows(), 0);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      std::uint32_t s = 0;
      for (std::size_t c = 0; c < rows.cols(); ++c) {
        const bool a = rows.get(r, c);
        const bool b = queries[q].get(c);
        if (op == PopcountOp::kAnd ? (a && b) : (a != b)) ++s;
      }
      out[q * rows.rows() + r] = s;
    }
  }
  return out;
}

std::vector<BitVector> random_queries(std::size_t n, std::size_t dim,
                                      Rng& rng) {
  std::vector<BitVector> qs;
  qs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    qs.push_back(BitVector::random(dim, rng));
  return qs;
}

TEST(BitopsBatch, KernelNameIsStable) {
  const char* name = batch_kernel_name();
  ASSERT_NE(name, nullptr);
  EXPECT_STREQ(name, batch_kernel_name());
}

// Sweep odd shapes: rows around the 4/8/16 tile edges, dims around 64-bit
// word boundaries, batches around the 2/4-query tile and 32-query block
// edges.
class BitopsBatchSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(BitopsBatchSweep, MatchesNaiveAndXor) {
  const auto [nrows, dim, batch] = GetParam();
  Rng rng(nrows * 131071 + dim * 257 + batch);
  const BitMatrix rows = BitMatrix::random(nrows, dim, rng);
  const auto queries = random_queries(batch, dim, rng);

  for (const PopcountOp op : {PopcountOp::kAnd, PopcountOp::kXor}) {
    std::vector<std::uint32_t> got;
    blocked_popcount_scores(rows, std::span<const BitVector>(queries), op,
                            got);
    const auto want = naive_scores(rows, queries, op);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], want[i])
          << "rows=" << nrows << " dim=" << dim << " batch=" << batch
          << " op=" << (op == PopcountOp::kAnd ? "and" : "xor") << " idx=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitopsBatchSweep,
    ::testing::Combine(::testing::Values(1, 3, 4, 7, 8, 9, 16, 17, 33),
                       ::testing::Values(1, 63, 64, 65, 127, 129, 200),
                       ::testing::Values(1, 2, 3, 5, 8, 33, 67)));

TEST(BitopsBatch, MatchesPerQueryMvm) {
  Rng rng(42);
  const std::size_t dim = 193;  // odd tail word
  const BitMatrix rows = BitMatrix::random(29, dim, rng);
  const auto queries = random_queries(71, dim, rng);

  std::vector<std::uint32_t> batch;
  blocked_popcount_scores(rows, std::span<const BitVector>(queries),
                          PopcountOp::kAnd, batch);

  std::vector<std::uint32_t> single;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    rows.mvm(queries[q], single);
    for (std::size_t r = 0; r < rows.rows(); ++r)
      ASSERT_EQ(batch[q * rows.rows() + r], single[r]) << "q=" << q;
  }
}

TEST(BitopsBatch, XorMatchesHamming) {
  Rng rng(43);
  const std::size_t dim = 321;
  const BitMatrix rows = BitMatrix::random(13, dim, rng);
  const auto queries = random_queries(9, dim, rng);

  std::vector<std::uint32_t> batch;
  blocked_popcount_scores(rows, std::span<const BitVector>(queries),
                          PopcountOp::kXor, batch);
  for (std::size_t q = 0; q < queries.size(); ++q)
    for (std::size_t r = 0; r < rows.rows(); ++r)
      ASSERT_EQ(batch[q * rows.rows() + r],
                rows.row_vector(r).hamming(queries[q]));
}

TEST(BitopsBatch, QueryMatrixOverloadMatchesSpanOverload) {
  Rng rng(44);
  const std::size_t dim = 100;
  const BitMatrix rows = BitMatrix::random(6, dim, rng);
  const BitMatrix queries = BitMatrix::random(11, dim, rng);

  std::vector<std::uint32_t> from_matrix;
  blocked_popcount_scores(rows, queries, PopcountOp::kAnd, from_matrix);

  std::vector<BitVector> qvec;
  for (std::size_t q = 0; q < queries.rows(); ++q)
    qvec.push_back(queries.row_vector(q));
  std::vector<std::uint32_t> from_span;
  blocked_popcount_scores(rows, std::span<const BitVector>(qvec),
                          PopcountOp::kAnd, from_span);
  EXPECT_EQ(from_matrix, from_span);
}

class BitopsArgmaxSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(BitopsArgmaxSweep, FusedArgmaxMatchesScoresPlusFirstWinsArgmax) {
  const auto [nrows, dim, batch] = GetParam();
  Rng rng(nrows * 7919 + dim * 31 + batch);
  const BitMatrix rows = BitMatrix::random(nrows, dim, rng);
  const auto queries = random_queries(batch, dim, rng);

  std::vector<std::uint32_t> got;
  blocked_dot_argmax(rows, std::span<const BitVector>(queries), got);
  ASSERT_EQ(got.size(), queries.size());

  std::vector<std::uint32_t> scores;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    rows.mvm(queries[q], scores);
    std::uint32_t want = 0;
    for (std::size_t r = 1; r < nrows; ++r)
      if (scores[r] > scores[want]) want = static_cast<std::uint32_t>(r);
    ASSERT_EQ(got[q], want)
        << "rows=" << nrows << " dim=" << dim << " batch=" << batch
        << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitopsArgmaxSweep,
    ::testing::Combine(::testing::Values(1, 3, 8, 9, 16, 17, 33),
                       ::testing::Values(1, 64, 65, 129),
                       ::testing::Values(1, 3, 4, 5, 33)));

TEST(BitopsBatch, FusedArgmaxFirstWinsOnMassiveTies) {
  // Duplicate rows force exact ties: the fused kernel must return the
  // first (lowest-index) maximal row, like argmax_u32.
  Rng rng(77);
  const std::size_t dim = 130;
  const auto proto_a = BitVector::random(dim, rng);
  const auto proto_b = BitVector::random(dim, rng);
  BitMatrix rows(21, dim);
  for (std::size_t r = 0; r < rows.rows(); ++r)
    rows.set_row(r, (r % 3 == 1) ? proto_b : proto_a);

  const auto queries = random_queries(17, dim, rng);
  std::vector<std::uint32_t> got;
  blocked_dot_argmax(rows, std::span<const BitVector>(queries), got);

  std::vector<std::uint32_t> scores;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    rows.mvm(queries[q], scores);
    ASSERT_EQ(got[q], common::argmax_u32(scores)) << "q=" << q;
  }
}

TEST(BitopsBatch, FusedArgmaxAllZeroScoresPicksRowZero) {
  Rng rng(78);
  const BitMatrix rows(19, 100);  // all-zero AM: every score is 0
  const auto queries = random_queries(9, 100, rng);
  std::vector<std::uint32_t> got;
  blocked_dot_argmax(rows, std::span<const BitVector>(queries), got);
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(got[q], 0u) << "q=" << q;
}

TEST(BatchScorer, MatchesFreeFunctionsAcrossOddShapes) {
  Rng rng(99);
  for (const std::size_t nrows : {5UL, 16UL, 21UL}) {
    for (const std::size_t dim : {65UL, 192UL}) {
      const BitMatrix rows = BitMatrix::random(nrows, dim, rng);
      const auto queries = random_queries(37, dim, rng);
      const BatchScorer scorer(rows);
      EXPECT_EQ(scorer.rows(), nrows);
      EXPECT_EQ(scorer.cols(), dim);

      for (const PopcountOp op : {PopcountOp::kAnd, PopcountOp::kXor}) {
        std::vector<std::uint32_t> from_scorer, from_free;
        scorer.scores(std::span<const BitVector>(queries), op, from_scorer);
        blocked_popcount_scores(rows, std::span<const BitVector>(queries), op,
                                from_free);
        ASSERT_EQ(from_scorer, from_free)
            << "rows=" << nrows << " dim=" << dim;
      }

      std::vector<std::uint32_t> am_scorer, am_free;
      scorer.dot_argmax(std::span<const BitVector>(queries), am_scorer);
      blocked_dot_argmax(rows, std::span<const BitVector>(queries), am_free);
      ASSERT_EQ(am_scorer, am_free) << "rows=" << nrows << " dim=" << dim;
    }
  }
}

TEST(BatchScorer, SnapshotsRowsAtConstruction) {
  Rng rng(100);
  BitMatrix rows = BitMatrix::random(9, 70, rng);
  const BatchScorer scorer(rows);
  const auto queries = random_queries(6, 70, rng);

  std::vector<std::uint32_t> before;
  scorer.scores(std::span<const BitVector>(queries), PopcountOp::kAnd, before);

  rows.flip(0, 0);  // mutate the caller's matrix after construction
  std::vector<std::uint32_t> after;
  scorer.scores(std::span<const BitVector>(queries), PopcountOp::kAnd, after);
  EXPECT_EQ(before, after);
}

TEST(BitopsBatch, EmptyBatchProducesEmptyOutput) {
  Rng rng(45);
  const BitMatrix rows = BitMatrix::random(4, 64, rng);
  std::vector<std::uint32_t> out(7, 123);
  blocked_popcount_scores(rows, std::span<const BitVector>(), PopcountOp::kAnd,
                          out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace memhd::common
