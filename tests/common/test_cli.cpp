#include "src/common/cli.hpp"

#include <gtest/gtest.h>

namespace memhd::common {
namespace {

CliParser make_parser() {
  CliParser p("test program");
  p.add_flag("dim", "128", "dimensionality");
  p.add_flag("rate", "0.05", "learning rate");
  p.add_flag("name", "mnist", "dataset");
  p.add_bool_flag("full", "paper scale");
  return p;
}

TEST(Cli, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("dim"), 128);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.05);
  EXPECT_EQ(p.get_string("name"), "mnist");
  EXPECT_FALSE(p.get_bool("full"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--dim", "512", "--name", "isolet"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("dim"), 512);
  EXPECT_EQ(p.get_string("name"), "isolet");
}

TEST(Cli, EqualsSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--dim=256", "--rate=0.1"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("dim"), 256);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.1);
}

TEST(Cli, BoolFlagForms) {
  {
    auto p = make_parser();
    const char* argv[] = {"prog", "--full"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_TRUE(p.get_bool("full"));
  }
  {
    auto p = make_parser();
    const char* argv[] = {"prog", "--full=false"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_FALSE(p.get_bool("full"));
  }
}

TEST(Cli, UnknownFlagFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus", "3"};
  EXPECT_FALSE(p.parse(3, argv));
}

TEST(Cli, MissingValueFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--dim"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, PositionalArgumentFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, UsageMentionsFlagsAndHelp) {
  auto p = make_parser();
  const std::string u = p.usage();
  EXPECT_NE(u.find("--dim"), std::string::npos);
  EXPECT_NE(u.find("dimensionality"), std::string::npos);
}

TEST(Cli, UnregisteredFlagLookupThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW(p.get_string("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace memhd::common
