#include "src/common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace memhd::common {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Csv, WriteReadRoundTrip) {
  const std::string path = temp_path("memhd_csv_rt.csv");
  {
    CsvWriter w(path);
    w.write_header({"a", "b", "c"});
    w.write_row({"1", "hello", "2.5"});
    w.write_row({"2", "with,comma", "x"});
    w.write_row({"3", "with\"quote", "y"});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1][1], "hello");
  EXPECT_EQ(rows[2][1], "with,comma");
  EXPECT_EQ(rows[3][1], "with\"quote");
  std::remove(path.c_str());
}

TEST(Csv, SplitLinePlain) {
  EXPECT_EQ(split_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, SplitLineQuoted) {
  EXPECT_EQ(split_csv_line("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(Csv, SplitLineDoubledQuote) {
  EXPECT_EQ(split_csv_line("\"say \"\"hi\"\"\",2"),
            (std::vector<std::string>{"say \"hi\"", "2"}));
}

TEST(Csv, SplitLineTrailingEmptyCell) {
  EXPECT_EQ(split_csv_line("a,"), (std::vector<std::string>{"a", ""}));
}

TEST(Csv, SplitLineStripsCarriageReturn) {
  EXPECT_EQ(split_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/missing.csv"),
               std::runtime_error);
}

TEST(Csv, WriterBadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 1), "-1.0");
  EXPECT_EQ(format_double(0.5), "0.5000");
}

}  // namespace
}  // namespace memhd::common
