// Cross-backend property tests for the kernel registry: every backend
// compiled into this binary is force-selected and must be bit-identical to
// the portable path on odd shapes (cols not a multiple of 64, rows not a
// multiple of the lane width, empty / 1-row / 1-query edges), including
// first-wins argmax tie-breaking. Backends the host CPU cannot run are
// skipped with a visible notice.
#include "src/common/kernels/backend.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/bitops_batch.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"

namespace memhd::common {
namespace {

// Restores the entering backend (and re-runs auto detection if the test
// fiddled with the environment) so tests compose in any order.
class BackendGuard {
 public:
  BackendGuard() : prev_(active_backend().name) {}
  ~BackendGuard() {
    ::unsetenv("MEMHD_BATCH_KERNEL");
    select_backend(prev_);
  }

 private:
  std::string prev_;
};

std::vector<BitVector> random_queries(std::size_t n, std::size_t dim,
                                      Rng& rng) {
  std::vector<BitVector> qs;
  qs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    qs.push_back(BitVector::random(dim, rng));
  return qs;
}

// Every supported backend in the registry; logs one notice per skipped one.
std::vector<const KernelBackend*> supported_backends() {
  std::vector<const KernelBackend*> out;
  for (const KernelBackend* backend : kernel_backends()) {
    if (backend->supported()) {
      out.push_back(backend);
    } else {
      std::printf("[ SKIPPED  ] backend %s: not supported on this CPU\n",
                  backend->name);
    }
  }
  return out;
}

TEST(KernelBackends, RegistryShapeAndAliases) {
  const auto backends = kernel_backends();
  ASSERT_FALSE(backends.empty());
  // Portable is the last-resort fallback: always present, always supported,
  // row-major (no repack), and reachable through its short alias.
  const KernelBackend* portable = backends.back();
  EXPECT_STREQ(portable->name, "portable-tiled");
  EXPECT_TRUE(portable->supported());
  EXPECT_EQ(portable->lane_rows, 1u);  // row-major: dispatcher skips repack
  EXPECT_EQ(find_kernel_backend("portable"), portable);
  EXPECT_EQ(find_kernel_backend("portable-tiled"), portable);
  EXPECT_EQ(find_kernel_backend("no-such-backend"), nullptr);
  for (const KernelBackend* backend : backends) {
    EXPECT_NE(backend->scores_block, nullptr) << backend->name;
    EXPECT_GE(backend->lane_rows, 1u) << backend->name;
    EXPECT_EQ(find_kernel_backend(backend->name), backend);
  }
#if defined(__x86_64__) && defined(__GNUC__)
  EXPECT_EQ(find_kernel_backend("avx512"),
            find_kernel_backend("avx512-vpopcntdq"));
  EXPECT_NE(find_kernel_backend("avx2"), nullptr);
#endif
}

TEST(KernelBackends, SelectBackendSwitchesAndRejectsUnknown) {
  BackendGuard guard;
  const char* before = active_backend().name;
  EXPECT_FALSE(select_backend("no-such-backend"));
  EXPECT_STREQ(active_backend().name, before);  // unchanged on failure
  ASSERT_TRUE(select_backend("portable"));
  EXPECT_STREQ(active_backend().name, "portable-tiled");
  EXPECT_STREQ(batch_kernel_name(), "portable-tiled");  // legacy alias
  for (const KernelBackend* backend : supported_backends()) {
    ASSERT_TRUE(select_backend(backend->name)) << backend->name;
    EXPECT_EQ(&active_backend(), backend);
  }
  EXPECT_TRUE(select_backend("auto"));
}

TEST(KernelBackends, EnvOverrideIsRecheckable) {
  BackendGuard guard;
  // The old design latched MEMHD_BATCH_KERNEL once per process; the
  // registry re-reads it on every select_backend("auto").
  ASSERT_EQ(::setenv("MEMHD_BATCH_KERNEL", "portable", 1), 0);
  ASSERT_TRUE(select_backend("auto"));
  EXPECT_STREQ(active_backend().name, "portable-tiled");
  ASSERT_EQ(::unsetenv("MEMHD_BATCH_KERNEL"), 0);
  ASSERT_TRUE(select_backend("auto"));
  // With the env cleared, auto picks the first supported registry entry.
  EXPECT_EQ(&active_backend(), supported_backends().front());
}

// The cross-backend bit-identity sweep: force-select each backend and
// assert scores (AND and XOR) and fused argmax equality against the
// portable path. Shapes stress every lane geometry: dims around 64-bit
// word boundaries, rows around the 2/4/8/16 lane and tile edges, batches
// around the 2/4-query tiles and the 32-query dispatch block.
class KernelBackendSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(KernelBackendSweep, BitIdenticalToPortable) {
  const auto [nrows, dim, batch] = GetParam();
  BackendGuard guard;
  Rng rng(nrows * 92821 + dim * 613 + batch);
  const BitMatrix rows = BitMatrix::random(nrows, dim, rng);
  const auto queries = random_queries(batch, dim, rng);
  const std::span<const BitVector> qspan(queries);

  ASSERT_TRUE(select_backend("portable"));
  std::vector<std::uint32_t> want_and, want_xor, want_argmax;
  blocked_popcount_scores(rows, qspan, PopcountOp::kAnd, want_and);
  blocked_popcount_scores(rows, qspan, PopcountOp::kXor, want_xor);
  blocked_dot_argmax(rows, qspan, want_argmax);

  for (const KernelBackend* backend : supported_backends()) {
    ASSERT_TRUE(select_backend(backend->name));
    std::vector<std::uint32_t> got;
    blocked_popcount_scores(rows, qspan, PopcountOp::kAnd, got);
    EXPECT_EQ(got, want_and) << backend->name << " AND scores diverge";
    blocked_popcount_scores(rows, qspan, PopcountOp::kXor, got);
    EXPECT_EQ(got, want_xor) << backend->name << " XOR scores diverge";
    blocked_dot_argmax(rows, qspan, got);
    EXPECT_EQ(got, want_argmax) << backend->name << " argmax diverges";
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, KernelBackendSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 17, 33),
                       ::testing::Values(1, 63, 64, 65, 129, 200),
                       ::testing::Values(1, 2, 3, 5, 33)));

TEST(KernelBackends, FirstWinsTieBreakOnEveryBackend) {
  // Duplicate rows force exact score ties; every backend must return the
  // first (lowest-index) maximal row, like argmax_u32, on both the odd
  // 21-row and the lane-aligned 32-row plane.
  BackendGuard guard;
  Rng rng(4242);
  for (const std::size_t nrows : {21UL, 32UL}) {
    const std::size_t dim = 130;
    const auto proto_a = BitVector::random(dim, rng);
    const auto proto_b = BitVector::random(dim, rng);
    BitMatrix rows(nrows, dim);
    for (std::size_t r = 0; r < nrows; ++r)
      rows.set_row(r, (r % 3 == 1) ? proto_b : proto_a);
    const auto queries = random_queries(19, dim, rng);

    for (const KernelBackend* backend : supported_backends()) {
      ASSERT_TRUE(select_backend(backend->name));
      std::vector<std::uint32_t> got;
      blocked_dot_argmax(rows, std::span<const BitVector>(queries), got);
      std::vector<std::uint32_t> scores;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        rows.mvm(queries[q], scores);
        ASSERT_EQ(got[q], argmax_u32(scores))
            << backend->name << " nrows=" << nrows << " q=" << q;
      }
    }
  }
}

TEST(KernelBackends, EmptyShapesOnEveryBackend) {
  BackendGuard guard;
  Rng rng(7);
  const BitMatrix rows = BitMatrix::random(5, 70, rng);
  const BitMatrix empty_rows(0, 70);
  const auto queries = random_queries(3, 70, rng);
  for (const KernelBackend* backend : supported_backends()) {
    ASSERT_TRUE(select_backend(backend->name));
    std::vector<std::uint32_t> out(9, 123);
    blocked_popcount_scores(rows, std::span<const BitVector>(),
                            PopcountOp::kAnd, out);
    EXPECT_TRUE(out.empty()) << backend->name;
    blocked_popcount_scores(empty_rows, std::span<const BitVector>(queries),
                            PopcountOp::kAnd, out);
    EXPECT_TRUE(out.empty()) << backend->name;
    // Argmax output is per query even when the row plane is empty (the
    // values are unspecified; only the shape is contractual).
    blocked_dot_argmax(empty_rows, std::span<const BitVector>(queries), out);
    EXPECT_EQ(out.size(), queries.size()) << backend->name;
  }
}

TEST(KernelBackends, BatchScorerPinsItsConstructionBackend) {
  BackendGuard guard;
  Rng rng(99);
  const BitMatrix rows = BitMatrix::random(13, 190, rng);
  const auto queries = random_queries(9, 190, rng);

  ASSERT_TRUE(select_backend("portable"));
  const BatchScorer portable_scorer(rows);
  EXPECT_STREQ(portable_scorer.backend().name, "portable-tiled");
  std::vector<std::uint32_t> want;
  portable_scorer.scores(std::span<const BitVector>(queries),
                         PopcountOp::kAnd, want);

  for (const KernelBackend* backend : supported_backends()) {
    ASSERT_TRUE(select_backend(backend->name));
    // A scorer built now pins this backend...
    const BatchScorer pinned(rows);
    EXPECT_EQ(&pinned.backend(), backend);
    // ...and the portable-built scorer keeps serving correct results even
    // though the active backend changed under it (its repack geometry is
    // portable's, not the new backend's).
    std::vector<std::uint32_t> got;
    portable_scorer.scores(std::span<const BitVector>(queries),
                           PopcountOp::kAnd, got);
    EXPECT_EQ(got, want) << "stale scorer broke under " << backend->name;
    pinned.scores(std::span<const BitVector>(queries), PopcountOp::kAnd, got);
    EXPECT_EQ(got, want) << backend->name;
  }
}

}  // namespace
}  // namespace memhd::common
