// Regression tests for the logger's thread contract (src/common/log.hpp):
// each message is emitted as ONE stdio call, so concurrent loggers can
// never interleave within a line. The original implementation wrote
// prefix, body, and newline as three separate stdio calls, which tore
// lines under concurrency — caught by the thread-safety annotation audit.
#include "src/common/log.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace memhd::common {
namespace {

/// Redirects stderr to a temp file for the scope and returns what was
/// written. dup2-based so it captures C stdio output (the logger uses
/// fputs), which std::cerr rdbuf swapping would miss.
class CaptureStderr {
 public:
  CaptureStderr()
      : path_(::testing::TempDir() + "memhd_stderr_capture_" +
              std::to_string(::getpid()) + ".txt") {
    std::fflush(stderr);
    saved_fd_ = ::dup(STDERR_FILENO);
    const int fd = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  ~CaptureStderr() {
    if (saved_fd_ >= 0) restore();
    std::remove(path_.c_str());
  }

  std::string take() {
    restore();
    std::string contents;
    if (FILE* f = std::fopen(path_.c_str(), "rb")) {
      char buf[4096];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
      std::fclose(f);
    }
    return contents;
  }

 private:
  void restore() {
    std::fflush(stderr);
    ::dup2(saved_fd_, STDERR_FILENO);
    ::close(saved_fd_);
    saved_fd_ = -1;
  }

  std::string path_;
  int saved_fd_ = -1;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = log_level(); }
  void TearDown() override { set_log_level(saved_level_); }
  LogLevel saved_level_;
};

TEST_F(LogTest, FormatsPrefixBodyNewline) {
  set_log_level(LogLevel::kDebug);
  CaptureStderr capture;
  MEMHD_LOG_INFO("hello %d %s", 42, "world");
  EXPECT_EQ(capture.take(), "[memhd INFO] hello 42 world\n");
}

TEST_F(LogTest, DropsMessagesBelowLevel) {
  set_log_level(LogLevel::kWarn);
  CaptureStderr capture;
  MEMHD_LOG_DEBUG("dropped");
  MEMHD_LOG_INFO("dropped");
  MEMHD_LOG_WARN("kept");
  const std::string out = capture.take();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("[memhd WARN] kept\n"), std::string::npos);
}

TEST_F(LogTest, TruncatesOverlongMessagesWithMarker) {
  set_log_level(LogLevel::kDebug);
  CaptureStderr capture;
  const std::string big(8192, 'x');
  MEMHD_LOG_INFO("%s", big.c_str());
  const std::string out = capture.take();
  // One complete line, shorter than the input, ending in the truncation
  // marker — never a torn or unterminated write.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
  EXPECT_LT(out.size(), big.size());
  EXPECT_NE(out.find("...\n"), std::string::npos);
}

TEST_F(LogTest, ConcurrentLoggersNeverTearLines) {
  set_log_level(LogLevel::kDebug);
  CaptureStderr capture;
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        MEMHD_LOG_INFO("thread-%d line-%d tail", t, i);
    });
  }
  for (auto& thread : threads) thread.join();
  const std::string out = capture.take();

  // Every line must be exactly "[memhd INFO] thread-T line-I tail" — a
  // torn line (prefix from one thread, body from another, or a missing
  // newline splice) fails the format check. With the pre-fix three-call
  // emission this failed reliably at this concurrency.
  std::istringstream lines(out);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    int t = -1, i = -1;
    char tail[8] = {0};
    const int matched =
        std::sscanf(line.c_str(), "[memhd INFO] thread-%d line-%d %4s", &t,
                    &i, tail);
    ASSERT_EQ(matched, 3) << "torn line: \"" << line << "\"";
    EXPECT_STREQ(tail, "tail") << "torn line: \"" << line << "\"";
    EXPECT_GE(t, 0);
    EXPECT_LT(t, kThreads);
    EXPECT_GE(i, 0);
    EXPECT_LT(i, kLines);
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace memhd::common
