#include "src/common/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"

namespace memhd::common {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(m(r, c), 2.5f);
  m.fill(-1.0f);
  EXPECT_FLOAT_EQ(m(2, 3), -1.0f);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3, 0.0f);
  auto row = m.row(1);
  row[2] = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  const Matrix& cm = m;
  EXPECT_FLOAT_EQ(cm.row(1)[2], 7.0f);
}

TEST(Matrix, MatmulMatchesNaive) {
  Rng rng(3);
  const Matrix a = Matrix::random_uniform(4, 5, rng, -1.0f, 1.0f);
  const Matrix b = Matrix::random_uniform(5, 6, rng, -1.0f, 1.0f);
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 6u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 5; ++k) acc += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), acc, 1e-5f);
    }
}

TEST(Matrix, MatmulTransposedMatchesNaive) {
  Rng rng(4);
  const Matrix a = Matrix::random_normal(3, 7, rng);
  const Matrix b = Matrix::random_normal(5, 7, rng);
  const Matrix c = a.matmul_transposed(b);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 5u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(c(i, j), dot(a.row(i), b.row(j)), 1e-4f);
}

TEST(Matrix, MeanAndStddev) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f;
  m(0, 1) = 2.0f;
  m(1, 0) = 3.0f;
  m(1, 1) = 4.0f;
  EXPECT_NEAR(m.mean(), 2.5, 1e-9);
  EXPECT_NEAR(m.stddev(), std::sqrt(1.25), 1e-9);
}

TEST(Matrix, AppendRowGrows) {
  Matrix m;
  const std::vector<float> r1 = {1.0f, 2.0f};
  const std::vector<float> r2 = {3.0f, 4.0f};
  m.append_row(r1);
  m.append_row(r2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(Matrix, ScaleMultipliesEverything) {
  Matrix m(2, 2, 3.0f);
  m.scale(0.5f);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(m(1, 1), 1.5f);
}

TEST(Matrix, RandomNormalMoments) {
  Rng rng(5);
  const Matrix m = Matrix::random_normal(100, 100, rng, 1.0f, 2.0f);
  EXPECT_NEAR(m.mean(), 1.0, 0.05);
  EXPECT_NEAR(m.stddev(), 2.0, 0.05);
}

TEST(VectorKernels, DotAndDistance) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(a, b), 4.0f - 10.0f + 18.0f);
  EXPECT_FLOAT_EQ(squared_distance(a, b), 9.0f + 49.0f + 9.0f);
  EXPECT_FLOAT_EQ(norm(a), std::sqrt(14.0f));
}

TEST(VectorKernels, NormOfZeroVector) {
  const std::vector<float> z = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(norm(z), 0.0f);
}

}  // namespace
}  // namespace memhd::common
