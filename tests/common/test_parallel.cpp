#include "src/common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace memhd::common {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; }, /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsSequentially) {
  // Below the grain everything runs inline; side effects must still happen.
  int sum = 0;
  parallel_for(0, 10, [&](std::size_t i) { sum += static_cast<int>(i); },
               /*grain=*/100);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<long> sum{0};
  parallel_for(100, 200, [&](std::size_t i) { sum += static_cast<long>(i); },
               /*grain=*/1);
  long expected = 0;
  for (long i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ExplicitPoolRunsAllChunks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::atomic<int>> hits(257);
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    ++hits[i];
  };
  pool.parallel_for(0, hits.size(), fn);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t) { ++counter; };
  pool.parallel_for(0, 50, fn);
  pool.parallel_for(0, 50, fn);
  EXPECT_EQ(counter.load(), 100);
}

TEST(GlobalPool, AtLeastOneWorker) {
  EXPECT_GE(global_pool().num_threads(), 1u);
}

TEST(GlobalPool, IsProcessWideSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_EQ(global_pool().num_threads(), configured_num_threads());
}

TEST(ParseNumThreads, PositiveIntegerWins) {
  EXPECT_EQ(parse_num_threads("1"), 1u);
  EXPECT_EQ(parse_num_threads("7"), 7u);
  EXPECT_EQ(parse_num_threads("64"), 64u);
}

TEST(ParseNumThreads, CapsRunawayValues) {
  EXPECT_EQ(parse_num_threads("256"), 256u);
  EXPECT_EQ(parse_num_threads("1000000"), 256u);
  EXPECT_EQ(parse_num_threads("99999999999999999999"), 256u);  // ERANGE
}

TEST(ParseNumThreads, FallsBackToHardware) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(parse_num_threads(nullptr), hw);
  EXPECT_EQ(parse_num_threads(""), hw);
  EXPECT_EQ(parse_num_threads("0"), hw);
  EXPECT_EQ(parse_num_threads("-3"), hw);
  EXPECT_EQ(parse_num_threads("lots"), hw);
  EXPECT_EQ(parse_num_threads("4cores"), hw);
}

TEST(ThreadPool, ConcurrentCallersCompleteIndependently) {
  // Two outside callers share only the task queue: caller B's parallel_for
  // must return once B's own chunks finish, even while caller A's task is
  // still running. (The old shared in_flight_ counter coupled them: B
  // waited for the union of both callers' tasks.)
  ThreadPool pool(2);
  std::promise<void> a_started;
  std::promise<void> release_a;
  std::shared_future<void> release_a_future = release_a.get_future().share();

  std::thread caller_a([&] {
    const std::function<void(std::size_t)> block = [&](std::size_t) {
      a_started.set_value();
      release_a_future.wait();
    };
    pool.parallel_for(0, 1, block);
  });
  a_started.get_future().wait();  // A's task now occupies one worker

  // B's chunks drain on the remaining worker while A is still blocked; if
  // B's return were coupled to A's task, this would hang until the test
  // harness killed us.
  std::atomic<int> b_hits{0};
  const std::function<void(std::size_t)> count = [&](std::size_t) {
    ++b_hits;
  };
  pool.parallel_for(0, 5, count);
  EXPECT_EQ(b_hits.load(), 5);

  release_a.set_value();
  caller_a.join();
}

TEST(ThreadPool, ConcurrentCallerStressFromOutsideThreads) {
  // Several outside threads hammer one pool concurrently; every call must
  // cover exactly its own range. (Primarily a ThreadSanitizer target.)
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kRange = 64;
  std::vector<std::thread> callers;
  std::vector<std::atomic<long>> sums(kCallers);
  for (auto& s : sums) s = 0;
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &sums, t] {
      const std::function<void(std::size_t)> add = [&sums, t](std::size_t i) {
        sums[t] += static_cast<long>(i);
      };
      for (std::size_t round = 0; round < kRounds; ++round)
        pool.parallel_for(0, kRange, add);
    });
  }
  for (auto& c : callers) c.join();
  const long per_round = kRange * (kRange - 1) / 2;
  for (const auto& s : sums)
    EXPECT_EQ(s.load(), per_round * static_cast<long>(kRounds));
}

TEST(ThreadPool, TaskExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  const std::function<void(std::size_t)> boom = [](std::size_t i) {
    if (i == 7) throw std::runtime_error("task 7 failed");
  };
  try {
    pool.parallel_for(0, 16, boom);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // The workers survived the unwinding and the pool is reusable.
  std::atomic<int> hits{0};
  const std::function<void(std::size_t)> count = [&](std::size_t) { ++hits; };
  pool.parallel_for(0, 32, count);
  EXPECT_EQ(hits.load(), 32);
}

TEST(ParallelFor, TaskExceptionPropagatesThroughGlobalPool) {
  // grain=1 forces pool dispatch (when >1 worker is configured; with one
  // worker the sequential path throws directly — same observable contract).
  EXPECT_THROW(
      parallel_for(
          0, 512,
          [](std::size_t i) {
            if (i == 300) throw std::invalid_argument("bad index");
          },
          /*grain=*/1),
      std::invalid_argument);
  // Global pool still fully functional afterwards.
  std::vector<std::atomic<int>> hits(512);
  parallel_for(0, 512, [&](std::size_t i) { ++hits[i]; }, /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorkerFlagSurvivesExceptionUnwinding) {
  // After a task throws, the worker's in_pool_worker() flag must have been
  // reset by RAII — otherwise a later nested-inline check on that thread
  // would be wrong in whichever direction the leak went.
  EXPECT_FALSE(in_pool_worker());
  try {
    parallel_for(
        0, 64, [](std::size_t) { throw std::runtime_error("unwind"); },
        /*grain=*/1);
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(in_pool_worker());  // caller thread never had the flag

  // Tasks still see the flag set (fresh RAII scope per task) — only
  // observable when the range actually dispatches to pool workers.
  if (configured_num_threads() > 1) {
    std::atomic<int> flagged{0};
    std::atomic<int> total{0};
    parallel_for(
        0, 64,
        [&](std::size_t) {
          ++total;
          if (in_pool_worker()) ++flagged;
        },
        /*grain=*/1);
    EXPECT_EQ(total.load(), 64);
    EXPECT_EQ(flagged.load(), total.load());
  }

  // ... and the nested-inline guard still works after the unwinding.
  std::vector<std::atomic<int>> hits(32 * 32);
  parallel_for(
      0, 32,
      [&](std::size_t i) {
        parallel_for(
            0, 32, [&](std::size_t j) { ++hits[i * 32 + j]; }, /*grain=*/1);
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(InlineParallelScope, ForcesInlineExecutionAndRestoresOnExit) {
  EXPECT_FALSE(in_pool_worker());
  {
    InlineParallelScope scope;
    EXPECT_TRUE(in_pool_worker());
    // Every index runs on the calling thread: the scope turns parallel_for
    // into a plain loop (the BatchServer shard workers rely on this).
    const auto caller = std::this_thread::get_id();
    std::atomic<int> off_thread{0};
    parallel_for(
        0, 1024,
        [&](std::size_t) {
          if (std::this_thread::get_id() != caller) ++off_thread;
        },
        /*grain=*/1);
    EXPECT_EQ(off_thread.load(), 0);
    {
      InlineParallelScope nested;
      EXPECT_TRUE(in_pool_worker());
    }
    EXPECT_TRUE(in_pool_worker());  // nesting restores the outer scope
  }
  EXPECT_FALSE(in_pool_worker());
}

TEST(ParallelFor, SequentialPathThrowsDirectly) {
  // Below the grain the loop runs inline; the exception reaches the caller
  // without any pool involvement.
  EXPECT_THROW(
      parallel_for(
          0, 4, [](std::size_t) { throw std::logic_error("inline"); },
          /*grain=*/100),
      std::logic_error);
}

TEST(ParallelFor, NestedCallRunsInlineWithoutDeadlock) {
  // A task body that issues its own parallel_for must not deadlock on the
  // shared pool; the inner loop runs inline on the worker.
  std::vector<std::atomic<int>> hits(64 * 64);
  parallel_for(
      0, 64,
      [&](std::size_t i) {
        parallel_for(
            0, 64, [&](std::size_t j) { ++hits[i * 64 + j]; }, /*grain=*/1);
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace memhd::common
