#include "src/common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace memhd::common {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; }, /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsSequentially) {
  // Below the grain everything runs inline; side effects must still happen.
  int sum = 0;
  parallel_for(0, 10, [&](std::size_t i) { sum += static_cast<int>(i); },
               /*grain=*/100);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<long> sum{0};
  parallel_for(100, 200, [&](std::size_t i) { sum += static_cast<long>(i); },
               /*grain=*/1);
  long expected = 0;
  for (long i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ExplicitPoolRunsAllChunks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::atomic<int>> hits(257);
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    ++hits[i];
  };
  pool.parallel_for(0, hits.size(), fn);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t) { ++counter; };
  pool.parallel_for(0, 50, fn);
  pool.parallel_for(0, 50, fn);
  EXPECT_EQ(counter.load(), 100);
}

TEST(GlobalPool, AtLeastOneWorker) {
  EXPECT_GE(global_pool().num_threads(), 1u);
}

TEST(GlobalPool, IsProcessWideSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_EQ(global_pool().num_threads(), configured_num_threads());
}

TEST(ParseNumThreads, PositiveIntegerWins) {
  EXPECT_EQ(parse_num_threads("1"), 1u);
  EXPECT_EQ(parse_num_threads("7"), 7u);
  EXPECT_EQ(parse_num_threads("64"), 64u);
}

TEST(ParseNumThreads, CapsRunawayValues) {
  EXPECT_EQ(parse_num_threads("256"), 256u);
  EXPECT_EQ(parse_num_threads("1000000"), 256u);
  EXPECT_EQ(parse_num_threads("99999999999999999999"), 256u);  // ERANGE
}

TEST(ParseNumThreads, FallsBackToHardware) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(parse_num_threads(nullptr), hw);
  EXPECT_EQ(parse_num_threads(""), hw);
  EXPECT_EQ(parse_num_threads("0"), hw);
  EXPECT_EQ(parse_num_threads("-3"), hw);
  EXPECT_EQ(parse_num_threads("lots"), hw);
  EXPECT_EQ(parse_num_threads("4cores"), hw);
}

TEST(ParallelFor, NestedCallRunsInlineWithoutDeadlock) {
  // A task body that issues its own parallel_for must not deadlock on the
  // shared pool; the inner loop runs inline on the worker.
  std::vector<std::atomic<int>> hits(64 * 64);
  parallel_for(
      0, 64,
      [&](std::size_t i) {
        parallel_for(
            0, 64, [&](std::size_t j) { ++hits[i * 64 + j]; }, /*grain=*/1);
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace memhd::common
