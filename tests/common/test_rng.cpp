#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace memhd::common {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_GT(c, draws / 10 - draws / 50);
    EXPECT_LT(c, draws / 10 + draws / 50);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (const auto i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(37);
  const auto s = rng.sample_without_replacement(8, 8);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  // The generator seeds from this; pin it so serialized models stay valid.
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIndexAlwaysInBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.uniform_index(7), 7u);
    ASSERT_LT(rng.uniform_index(1), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xFFFFFFFFULL,
                                           ~0ULL));

}  // namespace
}  // namespace memhd::common
