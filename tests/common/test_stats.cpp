#include "src/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace memhd::common {
namespace {

TEST(ConfusionMatrix, AccuracyAndCounts) {
  ConfusionMatrix cm(3);
  cm.add(0, 0, 5);
  cm.add(0, 1, 2);
  cm.add(1, 1, 4);
  cm.add(2, 0, 1);
  cm.add(2, 2, 3);
  EXPECT_EQ(cm.total(), 15u);
  EXPECT_EQ(cm.correct(), 12u);
  EXPECT_NEAR(cm.accuracy(), 12.0 / 15.0, 1e-12);
  EXPECT_EQ(cm.at(0, 1), 2u);
}

TEST(ConfusionMatrix, ErrorsPerClassDriveAllocation) {
  ConfusionMatrix cm(3);
  cm.add(0, 1, 7);   // class 0 heavily confused
  cm.add(1, 1, 10);  // class 1 clean
  cm.add(2, 0, 2);
  const auto errs = cm.errors_per_class();
  EXPECT_EQ(errs, (std::vector<std::size_t>{7, 0, 2}));
  const auto supp = cm.support_per_class();
  EXPECT_EQ(supp, (std::vector<std::size_t>{7, 10, 2}));
  const auto rates = cm.error_rate_per_class();
  EXPECT_NEAR(rates[0], 1.0, 1e-12);
  EXPECT_NEAR(rates[1], 0.0, 1e-12);
  EXPECT_NEAR(rates[2], 1.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(2);
  EXPECT_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, ResetClears) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.reset();
  EXPECT_EQ(cm.total(), 0u);
}

TEST(Accuracy, VectorOverload) {
  const std::vector<std::uint16_t> truth = {0, 1, 2, 1};
  const std::vector<std::uint16_t> pred = {0, 1, 1, 1};
  EXPECT_NEAR(accuracy(truth, pred), 0.75, 1e-12);
}

TEST(Argmax, FirstMaxWins) {
  const std::vector<float> v = {1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(argmax(v), 1u);
  const std::vector<std::uint32_t> u = {9, 3, 9};
  EXPECT_EQ(argmax_u32(u), 0u);
}

TEST(MeanStd, MatchesClosedForm) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(mean_of(v), 2.5, 1e-12);
  EXPECT_NEAR(stddev_of(v), std::sqrt(1.25), 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of({}), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  RunningStats rs;
  const std::vector<double> v = {3.0, -1.0, 4.0, 1.0, 5.0};
  for (const auto x : v) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_NEAR(rs.mean(), mean_of(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev_of(v), 1e-12);
  EXPECT_EQ(rs.min(), -1.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(2.0);
  EXPECT_EQ(rs.mean(), 2.0);
  EXPECT_EQ(rs.stddev(), 0.0);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 2.0);
}

}  // namespace
}  // namespace memhd::common
