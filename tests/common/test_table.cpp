#include "src/common/table.hpp"

#include <gtest/gtest.h>

namespace memhd::common {
namespace {

TEST(Table, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ColumnsAreAligned) {
  TablePrinter t({"h", "second"});
  t.add_row({"longer-cell", "x"});
  const std::string s = t.to_string();
  // Every rendered line between rules must have the same length.
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::string line = s.substr(start, end - start);
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected) << "line: " << line;
    start = end + 1;
  }
}

TEST(Table, SeparatorAddsRule) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // rules: top, under-header, separator, bottom = 4 lines starting with '+'
  std::size_t rules = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    if (s[start] == '+') ++rules;
    const std::size_t end = s.find('\n', start);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  EXPECT_EQ(rules, 4u);
}

}  // namespace
}  // namespace memhd::common
