// Property tests for the batch inference engine at the core layer: the
// blocked scores_batch / predict_batch paths must be bit-identical to the
// per-query scalar paths, and the batched QAT epoch must reproduce the
// streaming reference loop exactly.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/core/initializer.hpp"
#include "src/core/qat_trainer.hpp"
#include "src/hdc/associative_memory.hpp"  // add_bipolar
#include "test_util.hpp"

namespace memhd::core {
namespace {

MultiCentroidAM make_trained_am(const hdc::EncodedDataset& train,
                                std::size_t dim, std::size_t columns) {
  MemhdConfig cfg;
  cfg.dim = dim;
  cfg.columns = columns;
  cfg.kmeans_max_iterations = 3;
  return initialize_clustering(train, cfg, nullptr);
}

// Odd dimension (tail word) and odd column count (partial kernel tiles).
class McamBatchSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(McamBatchSweep, ScoresAndPredictionsMatchScalarPath) {
  const auto [dim, columns] = GetParam();
  const auto train = testing::clustered_encoded(
      /*per_class=*/20, dim, /*num_classes=*/4, /*modes=*/2,
      /*noise_bits=*/dim / 16, /*seed=*/dim + columns);
  const auto am = make_trained_am(train, dim, columns);

  const auto queries = testing::random_encoded(/*n=*/77, dim,
                                               /*num_classes=*/4,
                                               /*seed=*/99).hypervectors;

  std::vector<std::uint32_t> batch;
  am.scores_batch(queries, batch);
  ASSERT_EQ(batch.size(), queries.size() * am.columns());

  std::vector<std::uint32_t> single;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    am.scores_binary(queries[q], single);
    for (std::size_t c = 0; c < am.columns(); ++c)
      ASSERT_EQ(batch[q * am.columns() + c], single[c])
          << "dim=" << dim << " columns=" << columns << " q=" << q;
  }

  const auto predicted = am.predict_batch(queries);
  for (std::size_t q = 0; q < queries.size(); ++q)
    ASSERT_EQ(predicted[q], am.predict_binary(queries[q])) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Shapes, McamBatchSweep,
                         ::testing::Combine(::testing::Values(65, 127, 128,
                                                              193),
                                            ::testing::Values(5, 8, 19)));

TEST(BatchEquivalence, EvaluateBinaryMatchesPerQueryLoop) {
  const std::size_t dim = 129;
  const auto train = testing::clustered_encoded(30, dim, 4, 2, 6, 3);
  const auto test = testing::clustered_encoded(25, dim, 4, 2, 6, 17);
  const auto am = make_trained_am(train, dim, 12);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (am.predict_binary(test.hypervectors[i]) == test.labels[i]) ++correct;
  const double expected =
      static_cast<double>(correct) / static_cast<double>(test.size());

  EXPECT_DOUBLE_EQ(evaluate_binary(am, test), expected);
}

// Reference re-implementation of the pre-batching QAT epoch loop: stream
// every sample in (shuffled) order, scoring it at its turn. train_qat must
// reproduce this exactly — same trace, same updates, same binary AM — since
// its batched scoring reads the same constant per-epoch binary AM.
QatTrace reference_train_qat(MultiCentroidAM& am,
                             const hdc::EncodedDataset& train,
                             const hdc::EncodedDataset* eval,
                             const QatConfig& cfg) {
  QatTrace trace;
  common::Rng rng(cfg.seed ^ 0x9A70001ULL);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  common::BitMatrix best_binary = am.binary();
  const bool track_best = cfg.keep_best && eval != nullptr;

  std::vector<std::uint32_t> scores;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.shuffle) rng.shuffle(order);

    std::size_t correct = 0;
    for (const std::size_t i : order) {
      const auto& hv = train.hypervectors[i];
      const data::Label truth = train.labels[i];

      am.scores_binary(hv, scores);
      const std::size_t predicted_slot = am.best_centroid(scores);
      if (am.owner(predicted_slot) == truth) {
        ++correct;
        continue;
      }
      const std::size_t true_slot = am.best_centroid_of_class(scores, truth);
      hdc::add_bipolar(am.fp().row(true_slot), hv, cfg.learning_rate);
      hdc::add_bipolar(am.fp().row(predicted_slot), hv, -cfg.learning_rate);
      trace.updates += 2;

      if (cfg.binarize_per_sample) {
        am.normalize(cfg.normalization);
        am.binarize();
      }
    }
    if (!cfg.binarize_per_sample) {
      am.normalize(cfg.normalization);
      am.binarize();
    }
    trace.train_accuracy.push_back(static_cast<double>(correct) /
                                   static_cast<double>(train.size()));
    trace.epochs_run = epoch + 1;

    if (eval != nullptr) {
      const double acc = evaluate_binary(am, *eval);
      trace.eval_accuracy.push_back(acc);
      if (track_best && acc > trace.best_eval_accuracy) {
        trace.best_eval_accuracy = acc;
        trace.best_epoch = epoch;
        best_binary = am.binary();
      }
    }
  }
  if (track_best && trace.best_eval_accuracy > 0.0)
    am.restore_binary(best_binary);
  return trace;
}

TEST(BatchEquivalence, QatTrainerMatchesStreamingReference) {
  const std::size_t dim = 130;  // two words + tail
  const auto train = testing::clustered_encoded(40, dim, 4, 3, 8, 5);
  const auto eval = testing::clustered_encoded(20, dim, 4, 3, 8, 6);

  QatConfig cfg;
  cfg.epochs = 5;
  cfg.shuffle = true;
  cfg.keep_best = true;
  cfg.seed = 21;

  auto am_batched = make_trained_am(train, dim, 10);
  auto am_reference = am_batched;  // identical starting state

  const QatTrace got = train_qat(am_batched, train, &eval, cfg);
  const QatTrace want = reference_train_qat(am_reference, train, &eval, cfg);

  EXPECT_EQ(got.train_accuracy, want.train_accuracy);
  EXPECT_EQ(got.eval_accuracy, want.eval_accuracy);
  EXPECT_EQ(got.updates, want.updates);
  EXPECT_EQ(got.best_epoch, want.best_epoch);
  EXPECT_DOUBLE_EQ(got.best_eval_accuracy, want.best_eval_accuracy);
  EXPECT_TRUE(am_batched.binary() == am_reference.binary());
  EXPECT_TRUE(am_batched.fp() == am_reference.fp());
}

TEST(BatchEquivalence, QatPerSampleBinarizeKeepsStreamingPath) {
  const std::size_t dim = 96;
  const auto train = testing::clustered_encoded(15, dim, 4, 2, 4, 9);

  QatConfig cfg;
  cfg.epochs = 2;
  cfg.binarize_per_sample = true;
  cfg.keep_best = false;
  cfg.seed = 4;

  auto am_a = make_trained_am(train, dim, 8);
  auto am_b = am_a;
  const QatTrace got = train_qat(am_a, train, nullptr, cfg);
  const QatTrace want = reference_train_qat(am_b, train, nullptr, cfg);

  EXPECT_EQ(got.train_accuracy, want.train_accuracy);
  EXPECT_EQ(got.updates, want.updates);
  EXPECT_TRUE(am_a.binary() == am_b.binary());
}

}  // namespace
}  // namespace memhd::core
