#include "src/core/initializer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.hpp"

namespace memhd::core {
namespace {

MemhdConfig small_config(std::size_t dim = 256, std::size_t columns = 16) {
  MemhdConfig cfg;
  cfg.dim = dim;
  cfg.columns = columns;
  cfg.initial_ratio = 0.75;
  cfg.kmeans_max_iterations = 10;
  cfg.seed = 3;
  return cfg;
}

TEST(InitialClustersFormula, MatchesPaperEquation) {
  // n = max(1, floor(C*R/k))
  EXPECT_EQ(initial_clusters_per_class(512, 10, 0.8), 40u);   // 409.6/10
  EXPECT_EQ(initial_clusters_per_class(128, 10, 0.9), 11u);   // 115.2/10
  EXPECT_EQ(initial_clusters_per_class(128, 26, 1.0), 4u);    // 128/26
  EXPECT_EQ(initial_clusters_per_class(64, 26, 0.1), 1u);     // floor->0 => 1
  EXPECT_EQ(initial_clusters_per_class(26, 26, 1.0), 1u);
}

TEST(InitialClustersFormula, NeverExceedsEvenShare) {
  // n * k <= C must always hold so phase 1 fits.
  for (const std::size_t c : {26u, 64u, 100u, 128u}) {
    const std::size_t n = initial_clusters_per_class(c, 26, 1.0);
    EXPECT_LE(n * 26, c);
  }
}

TEST(ClusteringInit, ProducesFullyAssignedAM) {
  const auto train = testing::clustered_encoded(30, 256, 4, 3, 15);
  InitializerReport report;
  const auto am = initialize_clustering(train, small_config(), &report);
  EXPECT_TRUE(am.fully_assigned());
  EXPECT_EQ(am.columns(), 16u);
  const std::size_t total = std::accumulate(
      report.centroids_per_class.begin(), report.centroids_per_class.end(),
      std::size_t{0});
  EXPECT_EQ(total, 16u);
}

TEST(ClusteringInit, EveryClassGetsAtLeastOneCentroid) {
  const auto train = testing::clustered_encoded(20, 128, 5, 2, 10);
  const auto am = initialize_clustering(train, small_config(128, 12), nullptr);
  for (data::Label c = 0; c < 5; ++c)
    EXPECT_GE(am.centroids_per_class(c), 1u) << "class " << c;
}

TEST(ClusteringInit, ReportTracksAllocationRounds) {
  const auto train = testing::clustered_encoded(30, 128, 4, 3, 15);
  auto cfg = small_config(128, 20);
  cfg.initial_ratio = 0.5;  // leaves half the columns to allocation
  InitializerReport report;
  initialize_clustering(train, cfg, &report);
  EXPECT_EQ(report.initial_columns, 4u * 2u);  // floor(20*0.5/4)=2 per class
  EXPECT_GE(report.allocation_rounds, 1u);
  EXPECT_EQ(report.round_accuracy.size(), report.allocation_rounds);
}

TEST(ClusteringInit, RatioOneSkipsAllocation) {
  const auto train = testing::clustered_encoded(30, 128, 4, 2, 10);
  auto cfg = small_config(128, 16);
  cfg.initial_ratio = 1.0;  // 16/4 = 4 per class, nothing left
  InitializerReport report;
  const auto am = initialize_clustering(train, cfg, &report);
  EXPECT_TRUE(am.fully_assigned());
  EXPECT_EQ(report.allocation_rounds, 0u);
  for (data::Label c = 0; c < 4; ++c)
    EXPECT_EQ(am.centroids_per_class(c), 4u);
}

TEST(ClusteringInit, InitialAccuracyBeatsRandomSampling) {
  // The paper's Fig. 5 claim in miniature: clustering-based initialization
  // starts at a higher accuracy than random sampling.
  const auto train = testing::clustered_encoded(
      /*per_class=*/60, /*dim=*/256, /*num_classes=*/5, /*modes=*/3,
      /*noise_bits=*/25);
  auto cfg = small_config(256, 20);

  cfg.init = InitMethod::kClustering;
  const auto clustered = initialize(train, cfg, nullptr);
  const double acc_cluster = evaluate_binary(clustered, train);

  cfg.init = InitMethod::kRandomSampling;
  const auto random = initialize(train, cfg, nullptr);
  const double acc_random = evaluate_binary(random, train);

  EXPECT_GT(acc_cluster, acc_random);
}

TEST(RandomSamplingInit, EvenColumnSplit) {
  const auto train = testing::clustered_encoded(20, 128, 4, 2, 10);
  InitializerReport report;
  const auto am =
      initialize_random_sampling(train, small_config(128, 10), &report);
  EXPECT_TRUE(am.fully_assigned());
  // 10 columns over 4 classes: 3,3,2,2.
  std::vector<std::size_t> per_class;
  for (data::Label c = 0; c < 4; ++c)
    per_class.push_back(am.centroids_per_class(c));
  EXPECT_EQ(per_class, (std::vector<std::size_t>{3, 3, 2, 2}));
}

TEST(AllocationPolicies, AllProduceFullUtilization) {
  const auto train = testing::clustered_encoded(25, 128, 4, 3, 12);
  for (const auto policy :
       {AllocationPolicy::kProportional, AllocationPolicy::kGreedyOne,
        AllocationPolicy::kEven}) {
    auto cfg = small_config(128, 18);
    cfg.initial_ratio = 0.5;
    cfg.allocation = policy;
    const auto am = initialize_clustering(train, cfg, nullptr);
    EXPECT_TRUE(am.fully_assigned());
    std::size_t total = 0;
    for (data::Label c = 0; c < 4; ++c) total += am.centroids_per_class(c);
    EXPECT_EQ(total, 18u);
  }
}

TEST(ClusteringInit, DeterministicGivenSeed) {
  const auto train = testing::clustered_encoded(20, 128, 3, 2, 10);
  const auto a = initialize_clustering(train, small_config(128, 9), nullptr);
  const auto b = initialize_clustering(train, small_config(128, 9), nullptr);
  EXPECT_TRUE(a.binary() == b.binary());
}

TEST(ClusteringInit, TinyClassesStillFullyUtilize) {
  // Classes with fewer samples than their column budget force the
  // duplication path; the invariant (C assigned slots) must survive.
  const auto train = testing::clustered_encoded(/*per_class=*/3, 64, 3, 1, 4);
  auto cfg = small_config(64, 12);  // 4 columns per class > 3 samples
  cfg.initial_ratio = 1.0;
  const auto am = initialize_clustering(train, cfg, nullptr);
  EXPECT_TRUE(am.fully_assigned());
}

}  // namespace
}  // namespace memhd::core
