// Property sweep over the initial cluster ratio R (the Fig. 6 knob):
// invariants of phase 1 + phase 2 that must hold for every R in (0, 1].
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/initializer.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

class RatioSweep : public ::testing::TestWithParam<double> {
 protected:
  void SetUp() override {
    train_ = testing::clustered_encoded(
        /*per_class=*/40, /*dim=*/128, /*num_classes=*/4, /*modes=*/3,
        /*noise_bits=*/12, /*seed=*/7);
  }
  hdc::EncodedDataset train_;
};

TEST_P(RatioSweep, FullUtilizationAtEveryRatio) {
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 24;
  cfg.initial_ratio = GetParam();
  cfg.kmeans_max_iterations = 8;
  InitializerReport report;
  const auto am = initialize_clustering(train_, cfg, &report);

  EXPECT_TRUE(am.fully_assigned());
  const std::size_t total = std::accumulate(
      report.centroids_per_class.begin(), report.centroids_per_class.end(),
      std::size_t{0});
  EXPECT_EQ(total, cfg.columns);
}

TEST_P(RatioSweep, PhaseOneColumnsMatchFormula) {
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 24;
  cfg.initial_ratio = GetParam();
  cfg.kmeans_max_iterations = 8;
  InitializerReport report;
  initialize_clustering(train_, cfg, &report);

  const std::size_t n =
      initial_clusters_per_class(cfg.columns, 4, cfg.initial_ratio);
  EXPECT_EQ(report.initial_columns, n * 4);
  EXPECT_LE(report.initial_columns, cfg.columns);
}

TEST_P(RatioSweep, LowerRatioNeverReducesAllocationWork) {
  // Smaller R leaves more columns to the allocation loop, never fewer.
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 24;
  cfg.kmeans_max_iterations = 8;

  cfg.initial_ratio = GetParam();
  InitializerReport low;
  initialize_clustering(train_, cfg, &low);

  cfg.initial_ratio = 1.0;
  InitializerReport full;
  initialize_clustering(train_, cfg, &full);

  EXPECT_LE(full.initial_columns - 0, cfg.columns);
  EXPECT_GE(cfg.columns - low.initial_columns,
            cfg.columns - full.initial_columns);
}

TEST_P(RatioSweep, InitializedModelBeatsChance) {
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 24;
  cfg.initial_ratio = GetParam();
  cfg.kmeans_max_iterations = 8;
  const auto am = initialize_clustering(train_, cfg, nullptr);
  EXPECT_GT(evaluate_binary(am, train_), 0.4);  // 4 classes, chance 0.25
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "R" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace memhd::core
