// Ultra-high-D smoke test: a rematerialized encoder makes D = 262144
// practical — the materialized plane for 32 features at that D would keep
// ~34 MB of float mirror resident; the rematerialized one holds a seed.
// Exercises the full fit + predict path, not just the encoder.
#include <gtest/gtest.h>

#include "src/core/model.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

TEST(LargeDim, RematFitAndPredictAtQuarterMillionD) {
  const auto split = testing::tiny_separable();
  MemhdConfig cfg;
  cfg.dim = 262144;
  cfg.columns = 6;
  // Random-sampling init: K-means over quarter-million-bit vectors is
  // training-machine work, not unit-test work.
  cfg.init = InitMethod::kRandomSampling;
  cfg.epochs = 1;
  cfg.basis = hdc::BasisKind::kRematerialized;
  cfg.seed = 3;

  MemhdModel model(cfg, split.train.num_features(),
                   split.train.num_classes());
  EXPECT_LE(model.encoder().resident_bytes(), 64u);
  EXPECT_EQ(model.memory_bits(),
            split.train.num_features() * cfg.dim + cfg.columns * cfg.dim);

  model.fit(split.train);
  // Trivially separable task at huge D: anything short of near-perfect
  // accuracy means the encoder plane is broken, not that tuning is off.
  EXPECT_GE(model.evaluate(split.test), 0.9);
}

}  // namespace
}  // namespace memhd::core
