#include "src/core/memory_model.hpp"

#include <gtest/gtest.h>

namespace memhd::core {
namespace {

MemoryParams mnist_params(std::size_t dim, std::size_t columns = 0) {
  MemoryParams p;
  p.num_features = 784;
  p.dim = dim;
  p.num_classes = 10;
  p.columns = columns;
  p.num_levels = 256;
  p.n_models = 64;
  return p;
}

TEST(MemoryModel, TableOneFormulas) {
  // SearcHD: EM (f+L)D, AM kDN.
  {
    const auto m =
        memory_requirement(ModelKind::kSearcHD, mnist_params(8000));
    EXPECT_EQ(m.encoder_bits, (784u + 256u) * 8000u);
    EXPECT_EQ(m.am_bits, 10u * 8000u * 64u);
  }
  // QuantHD / LeHDC: EM (f+L)D, AM kD.
  for (const auto kind : {ModelKind::kQuantHD, ModelKind::kLeHDC}) {
    const auto m = memory_requirement(kind, mnist_params(1600));
    EXPECT_EQ(m.encoder_bits, (784u + 256u) * 1600u);
    EXPECT_EQ(m.am_bits, 10u * 1600u);
  }
  // BasicHDC: EM fD, AM kD.
  {
    const auto m =
        memory_requirement(ModelKind::kBasicHDC, mnist_params(10240));
    EXPECT_EQ(m.encoder_bits, 784u * 10240u);
    EXPECT_EQ(m.am_bits, 10u * 10240u);
  }
  // MEMHD: EM fD, AM CD.
  {
    const auto m =
        memory_requirement(ModelKind::kMemhd, mnist_params(128, 128));
    EXPECT_EQ(m.encoder_bits, 784u * 128u);
    EXPECT_EQ(m.am_bits, 128u * 128u);
  }
}

TEST(MemoryModel, KbConversion) {
  MemoryParams p = mnist_params(1024, 128);
  const auto m = memory_requirement(ModelKind::kMemhd, p);
  EXPECT_NEAR(m.total_kb(),
              static_cast<double>(784 * 1024 + 128 * 1024) / 8192.0, 1e-9);
  EXPECT_NEAR(m.encoder_kb() + m.am_kb(), m.total_kb(), 1e-9);
}

TEST(MemoryModel, MemhdAmSmallerThanSearcHdAtSameDim) {
  // The headline memory claim at equal D: C*D vs k*D*N with C << k*N.
  const auto memhd =
      memory_requirement(ModelKind::kMemhd, mnist_params(1024, 128));
  const auto searchd =
      memory_requirement(ModelKind::kSearcHD, mnist_params(1024));
  EXPECT_LT(memhd.am_bits, searchd.am_bits);
}

TEST(MemoryModel, MemhdAt128x128BeatsBaselinesAtIsoAccuracyDims) {
  // Fig. 7 iso-accuracy shapes (FMNIST): MEMHD 128x128 total memory is far
  // below every baseline's at its iso-accuracy dimensionality.
  const auto memhd =
      memory_requirement(ModelKind::kMemhd, mnist_params(128, 128));
  const auto basic =
      memory_requirement(ModelKind::kBasicHDC, mnist_params(10240));
  const auto searchd =
      memory_requirement(ModelKind::kSearcHD, mnist_params(8000));
  const auto quanthd =
      memory_requirement(ModelKind::kQuantHD, mnist_params(1600));
  const auto lehdc = memory_requirement(ModelKind::kLeHDC, mnist_params(400));
  EXPECT_LT(memhd.total_bits(), basic.total_bits());
  EXPECT_LT(memhd.total_bits(), searchd.total_bits());
  EXPECT_LT(memhd.total_bits(), quanthd.total_bits());
  EXPECT_LT(memhd.total_bits(), lehdc.total_bits());
}

TEST(MemoryModel, ModelNames) {
  EXPECT_STREQ(model_name(ModelKind::kBasicHDC), "BasicHDC");
  EXPECT_STREQ(model_name(ModelKind::kQuantHD), "QuantHD");
  EXPECT_STREQ(model_name(ModelKind::kSearcHD), "SearcHD");
  EXPECT_STREQ(model_name(ModelKind::kLeHDC), "LeHDC");
  EXPECT_STREQ(model_name(ModelKind::kMemhd), "MEMHD");
}

class MemoryMonotonicity
    : public ::testing::TestWithParam<ModelKind> {};

TEST_P(MemoryMonotonicity, TotalGrowsWithDimension) {
  const ModelKind kind = GetParam();
  std::size_t prev = 0;
  for (const std::size_t d : {256u, 512u, 1024u, 2048u}) {
    const auto m = memory_requirement(kind, mnist_params(d, 128));
    EXPECT_GT(m.total_bits(), prev);
    prev = m.total_bits();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, MemoryMonotonicity,
                         ::testing::Values(ModelKind::kBasicHDC,
                                           ModelKind::kQuantHD,
                                           ModelKind::kSearcHD,
                                           ModelKind::kLeHDC,
                                           ModelKind::kMemhd));

TEST(MemoryModel, MemhdGrowsWithColumns) {
  std::size_t prev = 0;
  for (const std::size_t c : {64u, 128u, 256u, 1024u}) {
    const auto m =
        memory_requirement(ModelKind::kMemhd, mnist_params(1024, c));
    EXPECT_GT(m.am_bits, prev);
    prev = m.am_bits;
  }
}

}  // namespace
}  // namespace memhd::core
