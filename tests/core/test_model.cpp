#include "src/core/model.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace memhd::core {
namespace {

MemhdConfig small_config() {
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 16;
  cfg.epochs = 10;
  cfg.learning_rate = 0.1f;
  cfg.kmeans_max_iterations = 10;
  cfg.seed = 7;
  return cfg;
}

TEST(MemhdModel, EndToEndAccuracyFloor) {
  const auto split = testing::tiny_multimodal();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  const auto report = model.fit(split.train, &split.test);
  EXPECT_GT(model.evaluate(split.test), 0.75);
  EXPECT_GT(report.post_init_train_accuracy, 0.4);
  EXPECT_EQ(report.training.epochs_run, 10u);
}

TEST(MemhdModel, PredictAgreesWithEvaluate) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i)
    if (model.predict(split.test.sample(i)) == split.test.label(i)) ++correct;
  const double manual =
      static_cast<double>(correct) / static_cast<double>(split.test.size());
  EXPECT_NEAR(model.evaluate(split.test), manual, 1e-12);
}

TEST(MemhdModel, FitEncodedReusesEncodings) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  const auto encoded_train = model.encoder().encode_dataset(split.train);
  const auto encoded_test = model.encoder().encode_dataset(split.test);
  model.fit_encoded(encoded_train, &encoded_test);
  EXPECT_NEAR(model.evaluate(split.test),
              model.evaluate_encoded(encoded_test), 1e-12);
}

TEST(MemhdModel, MemoryBitsIsTableOneFormula) {
  MemhdModel model(small_config(), 784, 10);
  // f*D + C*D
  EXPECT_EQ(model.memory_bits(), 784u * 128u + 16u * 128u);
}

TEST(MemhdModel, DeterministicAcrossRuns) {
  const auto split = testing::tiny_separable();
  MemhdModel a(small_config(), split.train.num_features(),
               split.train.num_classes());
  MemhdModel b(small_config(), split.train.num_features(),
               split.train.num_classes());
  a.fit(split.train);
  b.fit(split.train);
  EXPECT_TRUE(a.am().binary() == b.am().binary());
  EXPECT_NEAR(a.evaluate(split.test), b.evaluate(split.test), 1e-12);
}

TEST(MemhdModel, AmIsFullyUtilizedAfterFit) {
  const auto split = testing::tiny_multimodal();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  EXPECT_TRUE(model.am().fully_assigned());
  EXPECT_EQ(model.am().columns(), 16u);
}

TEST(MemhdModel, RandomSamplingInitVariantRuns) {
  const auto split = testing::tiny_multimodal();
  auto cfg = small_config();
  cfg.init = InitMethod::kRandomSampling;
  MemhdModel model(cfg, split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  EXPECT_GT(model.evaluate(split.test), 0.5);
}

TEST(MemhdModel, RejectsTooFewColumns) {
  auto cfg = small_config();
  cfg.columns = 3;  // fewer than num_classes
  EXPECT_DEATH(MemhdModel(cfg, 16, 4), "precondition");
}

}  // namespace
}  // namespace memhd::core
