#include "src/core/multi_centroid_am.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

using common::BitVector;
using common::Rng;

std::vector<float> constant_row(std::size_t dim, float v) {
  return std::vector<float>(dim, v);
}

TEST(MultiCentroidAM, OwnershipBookkeeping) {
  MultiCentroidAM am(3, 16, 8);
  EXPECT_FALSE(am.fully_assigned());
  am.set_centroid(0, 1, constant_row(16, 0.5f));
  am.set_centroid(1, 1, constant_row(16, -0.5f));
  am.set_centroid(2, 0, constant_row(16, 0.1f));
  EXPECT_EQ(am.owner(0), 1);
  EXPECT_EQ(am.centroids_per_class(1), 2u);
  EXPECT_EQ(am.centroids_per_class(0), 1u);
  EXPECT_EQ(am.centroids_per_class(2), 0u);
  EXPECT_EQ(am.centroids_of_class(1), (std::vector<std::size_t>{0, 1}));
}

TEST(MultiCentroidAM, ReassignmentMovesSlot) {
  MultiCentroidAM am(2, 8, 4);
  am.set_centroid(0, 0, constant_row(8, 1.0f));
  am.set_centroid(0, 1, constant_row(8, 2.0f));  // reassign slot 0
  EXPECT_EQ(am.owner(0), 1);
  EXPECT_EQ(am.centroids_per_class(0), 0u);
  EXPECT_EQ(am.centroids_per_class(1), 1u);
  EXPECT_FLOAT_EQ(am.fp()(0, 3), 2.0f);
}

TEST(MultiCentroidAM, FullyAssignedDetection) {
  MultiCentroidAM am(2, 8, 3);
  am.set_centroid(0, 0, constant_row(8, 0.0f));
  am.set_centroid(1, 1, constant_row(8, 0.0f));
  EXPECT_FALSE(am.fully_assigned());
  am.set_centroid(2, 0, constant_row(8, 0.0f));
  EXPECT_TRUE(am.fully_assigned());
}

TEST(MultiCentroidAM, BinarizeThresholdIsGlobalMean) {
  MultiCentroidAM am(2, 2, 2);
  am.set_centroid(0, 0, std::vector<float>{4.0f, 0.0f});
  am.set_centroid(1, 1, std::vector<float>{0.0f, 0.0f});  // mean = 1.0
  am.binarize();
  EXPECT_TRUE(am.binary().get(0, 0));
  EXPECT_FALSE(am.binary().get(0, 1));
  EXPECT_FALSE(am.binary().get(1, 0));
}

TEST(MultiCentroidAM, NormalizeL2MakesUnitRows) {
  MultiCentroidAM am(2, 4, 2);
  am.set_centroid(0, 0, std::vector<float>{3.0f, 4.0f, 0.0f, 0.0f});
  am.set_centroid(1, 1, std::vector<float>{0.0f, 0.0f, 0.0f, 0.0f});  // zero row unchanged
  am.normalize(NormalizationMode::kL2);
  EXPECT_NEAR(common::norm(am.fp().row(0)), 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(am.fp()(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(am.fp()(1, 0), 0.0f);
}

TEST(MultiCentroidAM, NormalizeZScoreCentersRows) {
  MultiCentroidAM am(2, 4, 2);
  am.set_centroid(0, 0, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  am.set_centroid(1, 1, std::vector<float>{5.0f, 5.0f, 5.0f, 5.0f});  // zero variance -> zeros
  am.normalize(NormalizationMode::kZScore);
  double mean = 0.0, var = 0.0;
  for (const float v : am.fp().row(0)) mean += v;
  mean /= 4.0;
  for (const float v : am.fp().row(0)) var += (v - mean) * (v - mean);
  EXPECT_NEAR(mean, 0.0, 1e-6);
  EXPECT_NEAR(std::sqrt(var / 4.0), 1.0, 1e-5);
  for (const float v : am.fp().row(1)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MultiCentroidAM, NormalizeNoneIsIdentity) {
  MultiCentroidAM am(2, 2, 2);
  am.set_centroid(0, 0, std::vector<float>{7.0f, -3.0f});
  am.set_centroid(1, 1, std::vector<float>{1.0f, 2.0f});
  am.normalize(NormalizationMode::kNone);
  EXPECT_FLOAT_EQ(am.fp()(0, 0), 7.0f);
}

TEST(MultiCentroidAM, BestCentroidSelection) {
  MultiCentroidAM am(2, 64, 4);
  Rng rng(3);
  // Two centroids per class with known prototypes.
  std::vector<BitVector> protos;
  std::vector<float> bip;
  for (std::size_t i = 0; i < 4; ++i) {
    protos.push_back(BitVector::random(64, rng));
    bip.clear();
    protos.back().to_bipolar(bip);
    am.set_centroid(i, static_cast<data::Label>(i / 2), bip);
  }
  am.binarize();

  std::vector<std::uint32_t> scores;
  am.scores_binary(protos[3], scores);
  // Eq. 4: global best is the matching slot.
  EXPECT_EQ(am.best_centroid(scores), 3u);
  // Eq. 5: within-class best for class 0 must be one of slots {0, 1}.
  const std::size_t within = am.best_centroid_of_class(scores, 0);
  EXPECT_TRUE(within == 0 || within == 1);
  EXPECT_EQ(am.predict_binary(protos[3]), 1);
}

TEST(MultiCentroidAM, PredictFpSkipsUnassignedSlots) {
  MultiCentroidAM am(2, 8, 4);
  am.set_centroid(0, 0, constant_row(8, 1.0f));
  am.set_centroid(1, 1, constant_row(8, -1.0f));
  // Slots 2, 3 unassigned; predict_fp must not return garbage.
  BitVector q(8);
  q.fill(true);
  EXPECT_EQ(am.predict_fp(q), 0);
}

TEST(MultiCentroidAM, RestoreBinarySnapshot) {
  MultiCentroidAM am(2, 8, 2);
  am.set_centroid(0, 0, constant_row(8, 1.0f));
  am.set_centroid(1, 1, constant_row(8, -1.0f));
  am.binarize();
  const common::BitMatrix snapshot = am.binary();
  am.fp().fill(0.0f);
  am.binarize();
  EXPECT_FALSE(am.binary() == snapshot);
  am.restore_binary(snapshot);
  EXPECT_TRUE(am.binary() == snapshot);
}

TEST(MultiCentroidAM, MemoryBitsIsCxD) {
  MultiCentroidAM am(10, 128, 128);
  EXPECT_EQ(am.memory_bits(), 128u * 128u);
}

TEST(MultiCentroidAM, MetricVariantsAgreeOnCleanPrototypes) {
  // With balanced random prototypes and the query equal to one of them,
  // every similarity measure must retrieve the owner.
  Rng rng(17);
  const std::size_t dim = 256;
  MultiCentroidAM am(3, dim, 6);
  std::vector<BitVector> protos;
  std::vector<float> bip;
  for (std::size_t s = 0; s < 6; ++s) {
    protos.push_back(BitVector::random(dim, rng));
    bip.clear();
    protos.back().to_bipolar(bip);
    am.set_centroid(s, static_cast<data::Label>(s / 2), bip);
  }
  am.binarize();
  for (std::size_t s = 0; s < 6; ++s) {
    const data::Label expect = static_cast<data::Label>(s / 2);
    EXPECT_EQ(am.predict_with_metric(protos[s],
                                     MultiCentroidAM::SearchMetric::kDot),
              expect);
    EXPECT_EQ(am.predict_with_metric(protos[s],
                                     MultiCentroidAM::SearchMetric::kHamming),
              expect);
    EXPECT_EQ(am.predict_with_metric(protos[s],
                                     MultiCentroidAM::SearchMetric::kCosine),
              expect);
  }
}

TEST(MultiCentroidAM, DotMetricMatchesPredictBinary) {
  Rng rng(19);
  MultiCentroidAM am(2, 128, 4);
  std::vector<float> bip;
  for (std::size_t s = 0; s < 4; ++s) {
    const auto proto = BitVector::random(128, rng);
    bip.clear();
    proto.to_bipolar(bip);
    am.set_centroid(s, static_cast<data::Label>(s % 2), bip);
  }
  am.binarize();
  for (int i = 0; i < 20; ++i) {
    const auto q = BitVector::random(128, rng);
    EXPECT_EQ(
        am.predict_with_metric(q, MultiCentroidAM::SearchMetric::kDot),
        am.predict_binary(q));
  }
}

TEST(MultiCentroidAM, EvaluateOnClusteredData) {
  const auto data = testing::clustered_encoded(20, 256, 3, 2, 10);
  MultiCentroidAM am(3, 256, 6);
  // Assign two centroids per class from the first samples of each class.
  std::vector<float> bip;
  std::size_t col = 0;
  for (data::Label c = 0; c < 3; ++c) {
    const auto idx = data.indices_of_class(c);
    for (std::size_t m = 0; m < 2; ++m, ++col) {
      bip.clear();
      data.hypervectors[idx[m]].to_bipolar(bip);
      am.set_centroid(col, c, bip);
    }
  }
  am.binarize();
  EXPECT_GT(evaluate_binary(am, data), 0.5);
  EXPECT_GT(evaluate_fp(am, data), 0.5);
}

}  // namespace
}  // namespace memhd::core
