// Online learning API: single-sample QAT updates and post-deployment
// adaptation (library extension beyond the paper's offline training).
#include <gtest/gtest.h>

#include "src/core/model.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

MemhdConfig small_config() {
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 16;
  cfg.epochs = 8;
  cfg.learning_rate = 0.1f;
  cfg.seed = 3;
  return cfg;
}

TEST(OnlineUpdate, CorrectPredictionIsNoop) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  // Find a correctly classified sample; update() must return false and
  // leave the binary AM untouched.
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (model.predict(split.test.sample(i)) != split.test.label(i)) continue;
    const common::BitMatrix before = model.am().binary();
    EXPECT_FALSE(model.update(split.test.sample(i), split.test.label(i)));
    EXPECT_TRUE(model.am().binary() == before);
    return;
  }
  FAIL() << "no correctly classified sample found";
}

TEST(OnlineUpdate, MispredictionTriggersUpdate) {
  const auto split = testing::tiny_hard_multimodal(/*seed=*/5, 60, 30);
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  bool updated = false;
  for (std::size_t i = 0; i < split.test.size() && !updated; ++i) {
    if (model.predict(split.test.sample(i)) == split.test.label(i)) continue;
    updated = model.update(split.test.sample(i), split.test.label(i));
  }
  EXPECT_TRUE(updated) << "expected at least one misprediction to update on";
}

TEST(OnlineUpdate, RepeatedUpdatesLearnTheSample) {
  const auto split = testing::tiny_hard_multimodal(/*seed=*/7, 60, 30);
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  // Hammer one mispredicted sample; within a few steps the model must
  // predict it correctly.
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (model.predict(split.test.sample(i)) == split.test.label(i)) continue;
    for (int step = 0; step < 25; ++step)
      if (!model.update(split.test.sample(i), split.test.label(i))) break;
    EXPECT_EQ(model.predict(split.test.sample(i)), split.test.label(i));
    return;
  }
  GTEST_SKIP() << "model was already perfect on the test set";
}

TEST(Adapt, ImprovesOnDriftedData) {
  // Train on one draw of the mixture, then adapt to a second draw (same
  // latent structure, fresh noise): accuracy on the new data must not drop.
  const auto original = testing::tiny_multimodal(/*seed=*/11, 60, 30);
  const auto drifted = testing::tiny_multimodal(/*seed=*/11, 40, 40);
  MemhdModel model(small_config(), original.train.num_features(),
                   original.train.num_classes());
  model.fit(original.train);
  const double before = model.evaluate(drifted.test);
  const auto trace = model.adapt(drifted.train, 5);
  EXPECT_EQ(trace.epochs_run, 5u);
  EXPECT_GE(model.evaluate(drifted.test), before - 0.05);
}

TEST(Adapt, ZeroEpochsIsIdentity) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  const common::BitMatrix before = model.am().binary();
  model.adapt(split.train, 0);
  EXPECT_TRUE(model.am().binary() == before);
}

TEST(OnlineUpdate, RequiresFittedModel) {
  MemhdModel model(small_config(), 16, 4);
  const std::vector<float> x(16, 0.5f);
  EXPECT_DEATH(model.update(x, 0), "precondition");
}

}  // namespace
}  // namespace memhd::core
