// Parameterized property sweep over (D, C) shapes: invariants the
// initialization + QAT pipeline must hold for ANY feasible configuration.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/initializer.hpp"
#include "src/core/qat_trainer.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

struct Shape {
  std::size_t dim;
  std::size_t columns;
};

class QatShapeSweep : public ::testing::TestWithParam<Shape> {
 protected:
  void SetUp() override {
    train_ = testing::clustered_encoded(
        /*per_class=*/30, GetParam().dim, /*num_classes=*/4, /*modes=*/2,
        /*noise_bits=*/GetParam().dim / 10, /*seed=*/5);
  }
  hdc::EncodedDataset train_;
};

TEST_P(QatShapeSweep, InitializationFullyUtilizesEveryShape) {
  MemhdConfig cfg;
  cfg.dim = GetParam().dim;
  cfg.columns = GetParam().columns;
  cfg.kmeans_max_iterations = 8;
  InitializerReport report;
  const auto am = initialize_clustering(train_, cfg, &report);

  EXPECT_TRUE(am.fully_assigned());
  EXPECT_EQ(am.columns(), cfg.columns);
  // Ownership partitions the columns exactly.
  const std::size_t total = std::accumulate(
      report.centroids_per_class.begin(), report.centroids_per_class.end(),
      std::size_t{0});
  EXPECT_EQ(total, cfg.columns);
  for (data::Label c = 0; c < 4; ++c)
    EXPECT_GE(am.centroids_per_class(c), 1u);
}

TEST_P(QatShapeSweep, TrainingPreservesStructuralInvariants) {
  MemhdConfig cfg;
  cfg.dim = GetParam().dim;
  cfg.columns = GetParam().columns;
  cfg.kmeans_max_iterations = 8;
  auto am = initialize_clustering(train_, cfg, nullptr);
  const std::vector<std::size_t> ownership_before = [&] {
    std::vector<std::size_t> v;
    for (std::size_t col = 0; col < am.columns(); ++col)
      v.push_back(am.owner(col));
    return v;
  }();

  QatConfig qc;
  qc.epochs = 5;
  qc.learning_rate = 0.1f;
  const auto trace = train_qat(am, train_, nullptr, qc);

  // Ownership is fixed at initialization; training never moves slots.
  for (std::size_t col = 0; col < am.columns(); ++col)
    EXPECT_EQ(am.owner(col), ownership_before[col]);
  // Updates come in pairs (true-slot +, predicted-slot -).
  EXPECT_EQ(trace.updates % 2, 0u);
  // Binary AM density stays strictly inside (0, 1) — the mean-threshold
  // quantizer cannot saturate.
  const double density =
      static_cast<double>(am.binary().popcount()) /
      static_cast<double>(am.columns() * am.dim());
  EXPECT_GT(density, 0.05);
  EXPECT_LT(density, 0.95);
}

TEST_P(QatShapeSweep, AccuracyAtLeastMatchesChance) {
  MemhdConfig cfg;
  cfg.dim = GetParam().dim;
  cfg.columns = GetParam().columns;
  cfg.kmeans_max_iterations = 8;
  auto am = initialize_clustering(train_, cfg, nullptr);
  QatConfig qc;
  qc.epochs = 5;
  train_qat(am, train_, nullptr, qc);
  // Structured data, 4 classes: must clear chance comfortably.
  EXPECT_GT(evaluate_binary(am, train_), 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QatShapeSweep,
    ::testing::Values(Shape{64, 4}, Shape{64, 9}, Shape{128, 16},
                      Shape{256, 6}, Shape{256, 32}, Shape{512, 12}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "D" + std::to_string(info.param.dim) + "xC" +
             std::to_string(info.param.columns);
    });

}  // namespace
}  // namespace memhd::core
