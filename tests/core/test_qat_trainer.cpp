#include "src/core/qat_trainer.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/core/initializer.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

MemhdConfig base_config() {
  MemhdConfig cfg;
  cfg.dim = 256;
  cfg.columns = 12;
  cfg.initial_ratio = 0.75;
  cfg.kmeans_max_iterations = 10;
  cfg.seed = 5;
  return cfg;
}

QatConfig qat_config(std::size_t epochs = 15) {
  QatConfig cfg;
  cfg.epochs = epochs;
  cfg.learning_rate = 0.1f;
  cfg.seed = 5;
  return cfg;
}

TEST(QatTrainer, ImprovesOrHoldsTrainingAccuracy) {
  const auto train = testing::clustered_encoded(
      /*per_class=*/50, /*dim=*/256, /*num_classes=*/4, /*modes=*/3,
      /*noise_bits=*/30);
  auto am = initialize_clustering(train, base_config(), nullptr);
  const double before = evaluate_binary(am, train);
  const auto trace = train_qat(am, train, nullptr, qat_config());
  const double after = evaluate_binary(am, train);
  EXPECT_GE(after, before - 0.02);
  EXPECT_EQ(trace.epochs_run, 15u);
}

TEST(QatTrainer, TraceShapesAndBounds) {
  const auto train = testing::clustered_encoded(20, 128, 3, 2, 10);
  auto cfg = base_config();
  cfg.dim = 128;
  cfg.columns = 9;
  auto am = initialize_clustering(train, cfg, nullptr);
  const auto eval = testing::clustered_encoded(10, 128, 3, 2, 10, /*seed=*/9);
  const auto trace = train_qat(am, train, &eval, qat_config(8));
  EXPECT_EQ(trace.train_accuracy.size(), 8u);
  EXPECT_EQ(trace.eval_accuracy.size(), 8u);
  for (const double a : trace.train_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_LT(trace.best_epoch, 8u);
}

TEST(QatTrainer, KeepBestRestoresBestSnapshot) {
  const auto train = testing::clustered_encoded(40, 128, 4, 3, 25);
  const auto eval = testing::clustered_encoded(20, 128, 4, 3, 25, /*seed=*/13);
  auto cfg = base_config();
  cfg.dim = 128;
  auto am = initialize_clustering(train, cfg, nullptr);
  auto qc = qat_config(12);
  qc.keep_best = true;
  const auto trace = train_qat(am, train, &eval, qc);
  // After restore, the deployed binary AM must score exactly the reported
  // best eval accuracy.
  EXPECT_NEAR(evaluate_binary(am, eval), trace.best_eval_accuracy, 1e-12);
  // And best >= every per-epoch accuracy by definition.
  for (const double a : trace.eval_accuracy)
    EXPECT_GE(trace.best_eval_accuracy + 1e-12, a);
}

TEST(QatTrainer, UpdatesOnlyOnMisprediction) {
  // Zero-noise single-mode data is classified perfectly right after
  // clustering init, so QAT must apply zero updates.
  const auto train = testing::clustered_encoded(10, 128, 3, 1, 0);
  auto cfg = base_config();
  cfg.dim = 128;
  cfg.columns = 3;
  cfg.initial_ratio = 1.0;
  auto am = initialize_clustering(train, cfg, nullptr);
  ASSERT_EQ(evaluate_binary(am, train), 1.0);
  const auto trace = train_qat(am, train, nullptr, qat_config(3));
  EXPECT_EQ(trace.updates, 0u);
  EXPECT_EQ(evaluate_binary(am, train), 1.0);
}

TEST(QatTrainer, UpdateTargetsRespectOwnership) {
  // Construct a 2-class AM where class 0's best slot is known, force one
  // misprediction, and verify only the Eq.4/Eq.5 slots moved.
  const std::size_t dim = 64;
  MultiCentroidAM am(2, dim, 4);
  common::Rng rng(7);
  std::vector<common::BitVector> protos;
  std::vector<float> bip;
  for (std::size_t s = 0; s < 4; ++s) {
    protos.push_back(common::BitVector::random(dim, rng));
    bip.clear();
    protos.back().to_bipolar(bip);
    am.set_centroid(s, static_cast<data::Label>(s / 2), bip);
  }
  am.binarize();

  // One training sample: looks exactly like slot 2 (class 1) but labeled 0.
  hdc::EncodedDataset train;
  train.dim = dim;
  train.num_classes = 2;
  train.hypervectors.push_back(protos[2]);
  train.labels.push_back(0);

  const common::Matrix fp_before = am.fp();
  QatConfig qc;
  qc.epochs = 1;
  qc.learning_rate = 0.5f;
  qc.normalization = NormalizationMode::kNone;
  qc.shuffle = false;
  const auto trace = train_qat(am, train, nullptr, qc);
  ASSERT_EQ(trace.updates, 2u);

  // Slot 2 (mispredicted, Eq. 4) moved away; one of slots {0,1} (true
  // class, Eq. 5) moved toward; the remaining slot untouched.
  std::size_t changed = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    bool moved = false;
    for (std::size_t j = 0; j < dim; ++j)
      if (am.fp()(s, j) != fp_before(s, j)) moved = true;
    if (moved) ++changed;
    if (s == 3) {
      EXPECT_FALSE(moved) << "slot 3 must be untouched";
    }
  }
  EXPECT_EQ(changed, 2u);
  // The mispredicted slot's similarity to the sample must have dropped.
  float before_dot = 0.0f, after_dot = 0.0f;
  for (std::size_t j = 0; j < dim; ++j) {
    const float b = protos[2].get(j) ? 1.0f : -1.0f;
    before_dot += fp_before(2, j) * b;
    after_dot += am.fp()(2, j) * b;
  }
  EXPECT_LT(after_dot, before_dot);
}

TEST(QatTrainer, PerSampleBinarizationAlsoLearns) {
  const auto train = testing::clustered_encoded(15, 128, 3, 2, 12);
  auto cfg = base_config();
  cfg.dim = 128;
  cfg.columns = 6;
  auto am = initialize_clustering(train, cfg, nullptr);
  auto qc = qat_config(3);
  qc.binarize_per_sample = true;
  train_qat(am, train, nullptr, qc);
  EXPECT_GT(evaluate_binary(am, train), 0.5);
}

}  // namespace
}  // namespace memhd::core
