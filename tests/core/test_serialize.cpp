#include "src/core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "src/core/model.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

namespace fs = std::filesystem;

std::string temp_model_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

MemhdConfig small_config() {
  MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 12;
  cfg.epochs = 5;
  cfg.kmeans_max_iterations = 8;
  cfg.seed = 11;
  return cfg;
}

TEST(Serialize, RoundTripPreservesPredictions) {
  const auto split = testing::tiny_multimodal();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);

  const std::string path = temp_model_path("memhd_roundtrip.model");
  model.save(path);
  const MemhdModel loaded = MemhdModel::load(path);
  std::remove(path.c_str());

  // Bit-exact deployment: identical binary AM, owners, and predictions.
  EXPECT_TRUE(loaded.am().binary() == model.am().binary());
  for (std::size_t col = 0; col < model.am().columns(); ++col)
    EXPECT_EQ(loaded.am().owner(col), model.am().owner(col));
  for (std::size_t i = 0; i < split.test.size(); ++i)
    EXPECT_EQ(loaded.predict(split.test.sample(i)),
              model.predict(split.test.sample(i)));
}

TEST(Serialize, RoundTripPreservesConfig) {
  const auto split = testing::tiny_separable();
  auto cfg = small_config();
  cfg.initial_ratio = 0.65;
  cfg.learning_rate = 0.07f;
  cfg.normalization = NormalizationMode::kL2;
  MemhdModel model(cfg, split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  const std::string path = temp_model_path("memhd_config.model");
  model.save(path);
  const MemhdModel loaded = MemhdModel::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.config().dim, cfg.dim);
  EXPECT_EQ(loaded.config().columns, cfg.columns);
  EXPECT_DOUBLE_EQ(loaded.config().initial_ratio, 0.65);
  EXPECT_FLOAT_EQ(loaded.config().learning_rate, 0.07f);
  EXPECT_EQ(loaded.config().normalization, NormalizationMode::kL2);
  EXPECT_EQ(loaded.config().seed, cfg.seed);
  EXPECT_EQ(loaded.num_features(), split.train.num_features());
  EXPECT_EQ(loaded.num_classes(), split.train.num_classes());
}

TEST(Serialize, RoundTripPreservesFpShadow) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  const std::string path = temp_model_path("memhd_fp.model");
  model.save(path);
  const MemhdModel loaded = MemhdModel::load(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.am().fp() == model.am().fp());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model("/nonexistent/missing.model"), std::runtime_error);
}

TEST(Serialize, BadMagicThrows) {
  const std::string path = temp_model_path("memhd_badmagic.model");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAMODELFILE_________";
  }
  EXPECT_THROW(load_model(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrows) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  const std::string path = temp_model_path("memhd_trunc.model");
  model.save(path);
  // Chop the file in half.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW(load_model(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RematRoundTripPreservesEverything) {
  const auto split = testing::tiny_multimodal();
  auto cfg = small_config();
  cfg.basis = hdc::BasisKind::kRematerialized;
  MemhdModel model(cfg, split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);

  const std::string path = temp_model_path("memhd_remat.model");
  model.save(path);
  const MemhdModel loaded = MemhdModel::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.config().basis, hdc::BasisKind::kRematerialized);
  EXPECT_EQ(loaded.config().basis_derivation,
            hdc::BasisDerivation::kCounterStream);
  // The loaded encoder plane is seed-only, not a resident matrix.
  EXPECT_LE(loaded.encoder().resident_bytes(), 64u);
  EXPECT_TRUE(loaded.am().binary() == model.am().binary());
  for (std::size_t i = 0; i < split.test.size(); ++i)
    EXPECT_EQ(loaded.predict(split.test.sample(i)),
              model.predict(split.test.sample(i)));

  // And the rematerialized model is interchangeable with a materialized
  // one trained identically (bit-identical encodings → identical AM).
  auto mcfg = cfg;
  mcfg.basis = hdc::BasisKind::kMaterialized;
  MemhdModel mat(mcfg, split.train.num_features(),
                 split.train.num_classes());
  mat.fit(split.train);
  EXPECT_TRUE(mat.am().binary() == loaded.am().binary());
}

TEST(Serialize, LegacyContainerLoadsWithSequentialDerivation) {
  // Hand-build a MEMHD001 container (the pre-basis-seam layout: same
  // header minus the two trailing basis bytes) and check the loader pins
  // the legacy sequential derivation so the plane decodes unchanged.
  const auto split = testing::tiny_separable();
  auto cfg = small_config();
  cfg.basis_derivation = hdc::BasisDerivation::kLegacySequential;
  MemhdModel model(cfg, split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);

  const std::string path = temp_model_path("memhd_legacy.model");
  model.save(path);
  // v3 layout: magic(8) u64*7(56) f64(8) f32(4) u8*3(3) basis-u8*2(2)
  // cascade u8*2+f64+u64*3(34)... Rewrite to v1: swap the magic revision
  // and splice out the basis + cascade bytes 79..114.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 115u);
  ASSERT_EQ(bytes.substr(0, 8), "MEMHD003");
  bytes[7] = '1';
  bytes.erase(79, 36);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const MemhdModel loaded = MemhdModel::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.config().basis, hdc::BasisKind::kMaterialized);
  EXPECT_EQ(loaded.config().basis_derivation,
            hdc::BasisDerivation::kLegacySequential);
  EXPECT_TRUE(loaded.am().binary() == model.am().binary());
  for (std::size_t i = 0; i < split.test.size(); ++i)
    EXPECT_EQ(loaded.predict(split.test.sample(i)),
              model.predict(split.test.sample(i)));
}

TEST(Serialize, RematLegacyComboRejectedAsCorrupt) {
  // basis = rematerialized + derivation = legacy is unconstructible; a
  // container claiming it must be rejected as corrupt, not aborted on.
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  const std::string path = temp_model_path("memhd_badcombo.model");
  model.save(path);
  {
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(79);
    const char combo[2] = {1, 1};  // rematerialized + legacy
    io.write(combo, 2);
  }
  EXPECT_THROW(load_model(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, SaveUnfittedModelDies) {
  MemhdModel model(small_config(), 16, 4);
  EXPECT_DEATH(model.save(temp_model_path("never.model")), "precondition");
}

}  // namespace
}  // namespace memhd::core
