#include "src/data/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.hpp"

namespace memhd::data {
namespace {

Dataset make_dataset() {
  common::Matrix feats(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    feats(i, 0) = static_cast<float>(i);
    feats(i, 1) = static_cast<float>(10 * i);
  }
  return Dataset("toy", std::move(feats), {0, 1, 2, 0, 1, 2}, 3);
}

TEST(Dataset, BasicAccessors) {
  const auto ds = make_dataset();
  EXPECT_EQ(ds.size(), 6u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.num_classes(), 3u);
  EXPECT_EQ(ds.label(3), 0);
  EXPECT_FLOAT_EQ(ds.sample(2)[1], 20.0f);
  EXPECT_NE(ds.summary().find("toy"), std::string::npos);
}

TEST(Dataset, ClassCountsAndIndices) {
  const auto ds = make_dataset();
  EXPECT_EQ(ds.class_counts(), (std::vector<std::size_t>{2, 2, 2}));
  EXPECT_EQ(ds.indices_of_class(1), (std::vector<std::size_t>{1, 4}));
}

TEST(Dataset, SubsetCopiesRowsAndLabels) {
  const auto ds = make_dataset();
  const auto sub = ds.subset({5, 0}, "sub");
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 2);
  EXPECT_FLOAT_EQ(sub.sample(0)[0], 5.0f);
  EXPECT_EQ(sub.label(1), 0);
}

TEST(Dataset, StratifiedSplitPreservesClassBalance) {
  common::Matrix feats(100, 1);
  std::vector<Label> labels(100);
  for (std::size_t i = 0; i < 100; ++i) {
    feats(i, 0) = static_cast<float>(i);
    labels[i] = static_cast<Label>(i % 4);
  }
  Dataset ds("balanced", std::move(feats), std::move(labels), 4);
  common::Rng rng(3);
  const auto [a, b] = ds.stratified_split(0.6, rng);
  EXPECT_EQ(a.size(), 60u);
  EXPECT_EQ(b.size(), 40u);
  for (const auto c : a.class_counts()) EXPECT_EQ(c, 15u);
  for (const auto c : b.class_counts()) EXPECT_EQ(c, 10u);
}

TEST(Dataset, RandomSplitSizes) {
  const auto ds = make_dataset();
  common::Rng rng(5);
  const auto [a, b] = ds.random_split(0.5, rng);
  EXPECT_EQ(a.size() + b.size(), ds.size());
  EXPECT_EQ(a.size(), 3u);
}

TEST(Dataset, ShufflePreservesSampleLabelPairs) {
  auto ds = make_dataset();
  common::Rng rng(7);
  ds.shuffle(rng);
  EXPECT_EQ(ds.size(), 6u);
  // Feature column 0 held the original index; pairing must survive.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto orig = static_cast<std::size_t>(ds.sample(i)[0]);
    EXPECT_EQ(ds.label(i), static_cast<Label>(orig % 3));
    EXPECT_FLOAT_EQ(ds.sample(i)[1], 10.0f * static_cast<float>(orig));
  }
  auto counts = ds.class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{2, 2, 2}));
}

}  // namespace
}  // namespace memhd::data
