#include "src/data/loaders.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "src/common/rng.hpp"

namespace memhd::data {
namespace {

namespace fs = std::filesystem;

void write_be_u32(std::ofstream& out, std::uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

void write_idx_images(const fs::path& path, std::uint32_t n,
                      std::uint32_t rows, std::uint32_t cols) {
  std::ofstream out(path, std::ios::binary);
  write_be_u32(out, 0x00000803);
  write_be_u32(out, n);
  write_be_u32(out, rows);
  write_be_u32(out, cols);
  for (std::uint32_t i = 0; i < n * rows * cols; ++i) {
    const unsigned char px = static_cast<unsigned char>(i % 256);
    out.write(reinterpret_cast<const char*>(&px), 1);
  }
}

void write_idx_labels(const fs::path& path, std::uint32_t n) {
  std::ofstream out(path, std::ios::binary);
  write_be_u32(out, 0x00000801);
  write_be_u32(out, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const unsigned char l = static_cast<unsigned char>(i % 10);
    out.write(reinterpret_cast<const char*>(&l), 1);
  }
}

class LoadersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "memhd_loader_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(LoadersTest, IdxImageRoundTrip) {
  const auto path = dir_ / "imgs";
  write_idx_images(path, 3, 2, 2);
  const auto m = load_idx_images(path.string());
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 1.0f / 255.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 4.0f / 255.0f);
}

TEST_F(LoadersTest, IdxLabelRoundTrip) {
  const auto path = dir_ / "labels";
  write_idx_labels(path, 12);
  const auto labels = load_idx_labels(path.string());
  ASSERT_EQ(labels.size(), 12u);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[11], 1);
}

TEST_F(LoadersTest, IdxBadMagicThrows) {
  const auto path = dir_ / "bad";
  std::ofstream out(path, std::ios::binary);
  write_be_u32(out, 0xDEADBEEF);
  write_be_u32(out, 0);
  write_be_u32(out, 0);
  write_be_u32(out, 0);
  out.close();
  EXPECT_THROW(load_idx_images(path.string()), std::runtime_error);
  EXPECT_THROW(load_idx_labels(path.string()), std::runtime_error);
}

TEST_F(LoadersTest, IdxTruncatedThrows) {
  const auto path = dir_ / "trunc";
  {
    std::ofstream out(path, std::ios::binary);
    write_be_u32(out, 0x00000803);
    write_be_u32(out, 5);
    write_be_u32(out, 28);
    write_be_u32(out, 28);
    // no pixel data
  }
  EXPECT_THROW(load_idx_images(path.string()), std::runtime_error);
}

TEST_F(LoadersTest, MnistDirectoryLayout) {
  write_idx_images(dir_ / "train-images-idx3-ubyte", 4, 2, 2);
  write_idx_labels(dir_ / "train-labels-idx1-ubyte", 4);
  write_idx_images(dir_ / "t10k-images-idx3-ubyte", 2, 2, 2);
  write_idx_labels(dir_ / "t10k-labels-idx1-ubyte", 2);
  const auto split = load_mnist_dir(dir_.string(), "mnist");
  EXPECT_EQ(split.train.size(), 4u);
  EXPECT_EQ(split.test.size(), 2u);
  EXPECT_EQ(split.train.num_classes(), 10u);
}

TEST_F(LoadersTest, IsoletCsv) {
  {
    std::ofstream out(dir_ / "isolet1+2+3+4.data");
    out << "0.1,0.2,0.3,1.\n0.4,0.5,0.6,26.\n";
  }
  {
    std::ofstream out(dir_ / "isolet5.data");
    out << "0.7,0.8,0.9,2.\n";
  }
  const auto split = load_isolet_dir(dir_.string());
  EXPECT_EQ(split.train.size(), 2u);
  EXPECT_EQ(split.train.num_features(), 3u);
  EXPECT_EQ(split.train.label(0), 0);   // 1-based -> 0-based
  EXPECT_EQ(split.train.label(1), 25);
  EXPECT_EQ(split.test.label(0), 1);
  EXPECT_FLOAT_EQ(split.test.features()(0, 2), 0.9f);
}

TEST_F(LoadersTest, RealDataAvailabilityProbe) {
  EXPECT_FALSE(real_data_available("mnist", dir_.string()));
  write_idx_images(dir_ / "train-images-idx3-ubyte", 1, 1, 1);
  write_idx_images(dir_ / "t10k-images-idx3-ubyte", 1, 1, 1);
  EXPECT_TRUE(real_data_available("mnist", dir_.string()));
  EXPECT_FALSE(real_data_available("unknown", dir_.string()));
  EXPECT_FALSE(real_data_available("mnist", ""));
}

TEST_F(LoadersTest, FallsBackToSyntheticWhenMissing) {
  common::Rng rng(1);
  const auto split = load_or_synthesize("isolet", Scale::kBench, rng,
                                        (dir_ / "empty").string());
  EXPECT_EQ(split.train.num_classes(), 26u);
  EXPECT_EQ(split.train.num_features(), 617u);
}

}  // namespace
}  // namespace memhd::data
