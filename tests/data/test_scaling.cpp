#include "src/data/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.hpp"

namespace memhd::data {
namespace {

TEST(MinMaxScaler, MapsTrainIntoUnitInterval) {
  common::Matrix m(3, 2);
  m(0, 0) = -2.0f; m(0, 1) = 10.0f;
  m(1, 0) = 0.0f;  m(1, 1) = 20.0f;
  m(2, 0) = 2.0f;  m(2, 1) = 30.0f;
  MinMaxScaler s;
  s.fit(m);
  s.transform(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(m(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m(2, 1), 1.0f);
}

TEST(MinMaxScaler, ClampsOutOfRangeTestValues) {
  common::Matrix train(2, 1);
  train(0, 0) = 0.0f;
  train(1, 0) = 1.0f;
  MinMaxScaler s;
  s.fit(train);
  common::Matrix test(2, 1);
  test(0, 0) = -5.0f;
  test(1, 0) = 5.0f;
  s.transform(test);
  EXPECT_FLOAT_EQ(test(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(test(1, 0), 1.0f);
}

TEST(MinMaxScaler, ConstantFeatureMapsToZero) {
  common::Matrix m(3, 1, 4.0f);
  MinMaxScaler s;
  s.fit(m);
  s.transform(m);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(m(r, 0), 0.0f);
}

TEST(MinMaxScaler, FitSkipsNonFiniteValues) {
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  common::Matrix m(4, 2);
  m(0, 0) = 1.0f;  m(0, 1) = kNan;
  m(1, 0) = kNan;  m(1, 1) = 4.0f;
  m(2, 0) = 3.0f;  m(2, 1) = kInf;
  m(3, 0) = -kInf; m(3, 1) = 8.0f;
  MinMaxScaler s;
  s.fit(m);
  // The learned range comes from the finite entries alone.
  EXPECT_FLOAT_EQ(s.feature_min()[0], 1.0f);
  EXPECT_FLOAT_EQ(s.feature_max()[0], 3.0f);
  EXPECT_FLOAT_EQ(s.feature_min()[1], 4.0f);
  EXPECT_FLOAT_EQ(s.feature_max()[1], 8.0f);

  // Transform sanitizes the same inputs: NaN to 0, ±inf to the clamp rail.
  s.transform(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 0.0f);  // was NaN
  EXPECT_FLOAT_EQ(m(3, 0), 0.0f);  // was -inf: clamped to the lower rail
  EXPECT_FLOAT_EQ(m(0, 1), 0.0f);  // was NaN
  EXPECT_FLOAT_EQ(m(2, 1), 1.0f);  // was +inf: clamped to the upper rail
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      EXPECT_TRUE(std::isfinite(m(r, c))) << r << "," << c;
}

TEST(MinMaxScaler, AllNonFiniteFeatureMapsToZero) {
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  common::Matrix m(2, 1);
  m(0, 0) = kNan;
  m(1, 0) = kNan;
  MinMaxScaler s;
  s.fit(m);
  ASSERT_TRUE(s.fitted());
  s.transform(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 0.0f);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  common::Rng rng(3);
  common::Matrix m = common::Matrix::random_normal(500, 3, rng, 5.0f, 2.0f);
  StandardScaler s;
  s.fit(m);
  s.transform(m);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) mean += m(r, c);
    mean /= static_cast<double>(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
      var += (m(r, c) - mean) * (m(r, c) - mean);
    var /= static_cast<double>(m.rows());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(StandardScaler, FitSkipsNonFiniteValues) {
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  common::Matrix m(4, 1);
  m(0, 0) = 2.0f;
  m(1, 0) = kNan;
  m(2, 0) = 6.0f;
  m(3, 0) = kInf;
  StandardScaler s;
  s.fit(m);
  s.transform(m);
  // Finite moments: mean 4, stddev 2 over {2, 6}.
  EXPECT_FLOAT_EQ(m(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(m(2, 0), 1.0f);
  // Non-finite inputs standardize to 0 instead of propagating.
  EXPECT_FLOAT_EQ(m(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(3, 0), 0.0f);
}

TEST(LevelQuantizer, NanAndInfinitiesAreDefined) {
  LevelQuantizer q(4);
  // NaN used to survive std::clamp and hit a float -> size_t cast (UB);
  // the contract now pins it to level 0.
  EXPECT_EQ(q.quantize(std::numeric_limits<float>::quiet_NaN()), 0);
  EXPECT_EQ(q.quantize(-std::numeric_limits<float>::infinity()), 0);
  EXPECT_EQ(q.quantize(std::numeric_limits<float>::infinity()), 3);
}

TEST(LevelQuantizer, BoundaryBehaviour) {
  LevelQuantizer q(4);
  EXPECT_EQ(q.quantize(0.0f), 0);
  EXPECT_EQ(q.quantize(0.24f), 0);
  EXPECT_EQ(q.quantize(0.25f), 1);
  EXPECT_EQ(q.quantize(0.75f), 3);
  EXPECT_EQ(q.quantize(1.0f), 3);  // top of range stays in the last level
  EXPECT_EQ(q.quantize(-1.0f), 0);
  EXPECT_EQ(q.quantize(2.0f), 3);
}

TEST(LevelQuantizer, PaperLevels256) {
  LevelQuantizer q(256);
  EXPECT_EQ(q.num_levels(), 256u);
  EXPECT_EQ(q.quantize(0.0f), 0);
  EXPECT_EQ(q.quantize(1.0f), 255);
  EXPECT_EQ(q.quantize(0.5f), 128);
}

TEST(LevelQuantizer, QuantizeRow) {
  LevelQuantizer q(10);
  const std::vector<float> row = {0.0f, 0.55f, 0.99f};
  const auto levels = q.quantize_row(row);
  EXPECT_EQ(levels, (std::vector<std::uint16_t>{0, 5, 9}));
}

TEST(ScaleSplitMinMax, AppliesTrainStatisticsToBoth) {
  common::Matrix tr(2, 1), te(1, 1);
  tr(0, 0) = 0.0f;
  tr(1, 0) = 10.0f;
  te(0, 0) = 5.0f;
  TrainTestSplit split;
  split.train = Dataset("tr", std::move(tr), {0, 1}, 2);
  split.test = Dataset("te", std::move(te), {0}, 2);
  scale_split_minmax(split);
  EXPECT_FLOAT_EQ(split.test.features()(0, 0), 0.5f);
}

}  // namespace
}  // namespace memhd::data
