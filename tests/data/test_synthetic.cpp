#include "src/data/synthetic.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/matrix.hpp"

namespace memhd::data {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig cfg;
  cfg.num_classes = 3;
  cfg.num_features = 20;
  cfg.latent_dim = 4;
  cfg.modes_per_class = 2;
  cfg.train_per_class = 30;
  cfg.test_per_class = 10;
  return cfg;
}

TEST(Synthetic, ShapesAndLabelRanges) {
  common::Rng rng(1);
  const auto split = generate_synthetic(small_config(), rng);
  EXPECT_EQ(split.train.size(), 90u);
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.num_features(), 20u);
  EXPECT_EQ(split.train.num_classes(), 3u);
  for (std::size_t i = 0; i < split.train.size(); ++i)
    EXPECT_LT(split.train.label(i), 3);
}

TEST(Synthetic, BalancedClasses) {
  common::Rng rng(2);
  const auto split = generate_synthetic(small_config(), rng);
  for (const auto c : split.train.class_counts()) EXPECT_EQ(c, 30u);
  for (const auto c : split.test.class_counts()) EXPECT_EQ(c, 10u);
}

TEST(Synthetic, FeaturesInUnitInterval) {
  common::Rng rng(3);
  const auto split = generate_synthetic(small_config(), rng);
  for (std::size_t i = 0; i < split.train.size(); ++i)
    for (const float v : split.train.sample(i)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
}

TEST(Synthetic, DeterministicGivenSeed) {
  common::Rng r1(42), r2(42);
  const auto a = generate_synthetic(small_config(), r1);
  const auto b = generate_synthetic(small_config(), r2);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_TRUE(a.train.features() == b.train.features());
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  common::Rng r1(1), r2(2);
  const auto a = generate_synthetic(small_config(), r1);
  const auto b = generate_synthetic(small_config(), r2);
  EXPECT_FALSE(a.train.features() == b.train.features());
}

TEST(Synthetic, ClassesAreSeparated) {
  // Mean intra-class distance must be well below mean inter-class distance;
  // otherwise no classifier experiment downstream makes sense.
  common::Rng rng(5);
  auto cfg = small_config();
  cfg.train_per_class = 50;
  const auto split = generate_synthetic(cfg, rng);
  const auto& ds = split.train;

  double intra = 0.0, inter = 0.0;
  std::size_t n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < ds.size(); i += 3) {
    for (std::size_t j = i + 1; j < ds.size(); j += 7) {
      const double d = common::squared_distance(ds.sample(i), ds.sample(j));
      if (ds.label(i) == ds.label(j)) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(SyntheticProfiles, MnistLikeShape) {
  const auto cfg = mnist_like_config(Scale::kBench);
  EXPECT_EQ(cfg.num_classes, 10u);
  EXPECT_EQ(cfg.num_features, 784u);
  const auto paper = mnist_like_config(Scale::kPaper);
  EXPECT_EQ(paper.train_per_class, 6000u);
  EXPECT_EQ(paper.test_per_class, 1000u);
}

TEST(SyntheticProfiles, IsoletLikeShape) {
  const auto cfg = isolet_like_config(Scale::kPaper);
  EXPECT_EQ(cfg.num_classes, 26u);
  EXPECT_EQ(cfg.num_features, 617u);
  // ISOLET's defining small-sample property.
  EXPECT_EQ(cfg.train_per_class, 240u);
}

TEST(SyntheticProfiles, FmnistHarderThanMnist) {
  const auto m = mnist_like_config(Scale::kBench);
  const auto f = fmnist_like_config(Scale::kBench);
  EXPECT_LT(f.class_separation, m.class_separation);
  EXPECT_GE(f.within_mode_stddev, m.within_mode_stddev);
}

TEST(SyntheticProfiles, GenerateProfileDispatch) {
  common::Rng rng(6);
  const auto isolet = generate_profile("isolet", Scale::kBench, rng);
  EXPECT_EQ(isolet.train.num_classes(), 26u);
  EXPECT_THROW(generate_profile("nope", Scale::kBench, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace memhd::data
