#include "src/hdc/associative_memory.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/hdc/similarity.hpp"

namespace memhd::hdc {
namespace {

using common::BitVector;
using common::Rng;

TEST(AssociativeMemory, AccumulateAddsBipolar) {
  AssociativeMemory am(2, 4);
  const auto hv = BitVector::from_bools({true, false, true, false});
  am.accumulate(0, hv);
  am.accumulate(0, hv, 0.5f);
  const auto row = am.fp().row(0);
  EXPECT_FLOAT_EQ(row[0], 1.5f);
  EXPECT_FLOAT_EQ(row[1], -1.5f);
  EXPECT_FLOAT_EQ(row[2], 1.5f);
  EXPECT_FLOAT_EQ(row[3], -1.5f);
  // Class 1 untouched.
  EXPECT_FLOAT_EQ(am.fp().row(1)[0], 0.0f);
}

TEST(AssociativeMemory, BinarizeUsesGlobalMeanThreshold) {
  AssociativeMemory am(2, 2);
  am.fp()(0, 0) = 4.0f;
  am.fp()(0, 1) = 0.0f;
  am.fp()(1, 0) = 0.0f;
  am.fp()(1, 1) = 0.0f;  // mean = 1.0
  am.binarize();
  EXPECT_TRUE(am.binary().get(0, 0));    // 4 > 1
  EXPECT_FALSE(am.binary().get(0, 1));   // 0 < 1
  EXPECT_FALSE(am.binary().get(1, 0));
}

TEST(AssociativeMemory, ScoresFpEqualsNaiveBipolarDot) {
  Rng rng(3);
  AssociativeMemory am(3, 64);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t j = 0; j < 64; ++j)
      am.fp()(c, j) = static_cast<float>(rng.normal());
  const auto q = BitVector::random(64, rng);
  std::vector<float> scores;
  am.scores_fp(q, scores);
  for (std::size_t c = 0; c < 3; ++c) {
    float naive = 0.0f;
    for (std::size_t j = 0; j < 64; ++j)
      naive += am.fp()(c, j) * (q.get(j) ? 1.0f : -1.0f);
    EXPECT_NEAR(scores[c], naive, 1e-3f);
  }
}

TEST(AssociativeMemory, ScoresBinaryIsPopcountDot) {
  Rng rng(4);
  AssociativeMemory am(2, 128);
  am.fp().fill(-1.0f);
  for (std::size_t j = 0; j < 128; j += 2) am.fp()(0, j) = 1.0f;
  for (std::size_t j = 0; j < 128; j += 4) am.fp()(1, j) = 1.0f;
  am.binarize();
  const auto q = BitVector::random(128, rng);
  std::vector<std::uint32_t> scores;
  am.scores_binary(q, scores);
  EXPECT_EQ(scores[0], am.binary().row_vector(0).dot(q));
  EXPECT_EQ(scores[1], am.binary().row_vector(1).dot(q));
}

TEST(AssociativeMemory, PredictsNearestPrototype) {
  Rng rng(5);
  const std::size_t d = 512;
  const auto proto0 = BitVector::random(d, rng);
  const auto proto1 = BitVector::random(d, rng);
  AssociativeMemory am(2, d);
  am.accumulate(0, proto0);
  am.accumulate(1, proto1);
  am.binarize();

  auto noisy = proto1;
  for (std::size_t i = 0; i < d / 16; ++i) noisy.flip(rng.uniform_index(d));
  EXPECT_EQ(am.predict_binary(noisy), 1);
  EXPECT_EQ(am.predict_fp(noisy), 1);
  EXPECT_EQ(am.predict_binary(proto0), 0);
}

TEST(AddBipolar, WeightSign) {
  std::vector<float> row(3, 0.0f);
  const auto hv = common::BitVector::from_bools({true, false, true});
  add_bipolar(row, hv, -2.0f);
  EXPECT_FLOAT_EQ(row[0], -2.0f);
  EXPECT_FLOAT_EQ(row[1], 2.0f);
  EXPECT_FLOAT_EQ(row[2], -2.0f);
}

TEST(AssociativeMemory, MemoryBitsFormula) {
  AssociativeMemory am(26, 10240);
  EXPECT_EQ(am.memory_bits(), 26u * 10240u);
}

}  // namespace
}  // namespace memhd::hdc
