// Property tests for the basis-provider seam: a rematerialized plane is
// bit-identical to the materialized one — for raw words, float rows, EM
// tiles, and every encoder surface built on them — while holding O(1)
// resident memory.
#include "src/hdc/basis_provider.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/hdc/projection_encoder.hpp"

namespace memhd::hdc {
namespace {

// Odd, boundary-hugging shapes: single cell, one-word rows, exactly
// word-aligned rows, multi-word rows with tails.
const std::pair<std::size_t, std::size_t> kOddShapes[] = {
    {1, 1}, {3, 65}, {17, 127}, {33, 128}, {100, 257}};
// {num_features, dim} per shape (features first to stress tail masking).

ProjectionEncoderConfig make_config(std::size_t f, std::size_t d,
                                    BasisKind basis,
                                    std::uint64_t seed = 42) {
  ProjectionEncoderConfig cfg;
  cfg.num_features = f;
  cfg.dim = d;
  cfg.seed = seed;
  cfg.basis = basis;
  return cfg;
}

std::vector<float> random_features(std::size_t f, common::Rng& rng) {
  std::vector<float> x(f);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  return x;
}

common::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             common::Rng& rng) {
  common::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (auto& v : m.row(r)) v = static_cast<float>(rng.uniform());
  return m;
}

// ------------------------------------------------------- the counter stream

TEST(BasisWord, GoldenValues) {
  // Frozen values of the counter-mode stream. These ARE the serialization
  // contract: a rematerialized model file stores only its seed, so if these
  // change, every saved rematerialized model silently decodes to a
  // different plane. Never update these constants.
  EXPECT_EQ(basis_word(42, 0), 0xBDD732262FEB6E95ULL);
  EXPECT_EQ(basis_word(42, 1), 0x28EFE333B266F103ULL);
  EXPECT_EQ(basis_word(42, 2), 0x47526757130F9F52ULL);
  EXPECT_EQ(basis_word(42, 17), 0x7ED90003F67F9E1DULL);
  EXPECT_EQ(basis_word(42, 1000000), 0xB053C53312AC3FFBULL);
  EXPECT_EQ(basis_word(7, 3), 0x953AEB70673E29CBULL);
}

TEST(BasisWord, CounterJumpMatchesSequentialStream) {
  // O(1) random access: word k equals the k-th draw of a sequential
  // SplitMix64 stream started at the seed.
  std::uint64_t state = 42;
  for (std::uint64_t k = 0; k < 100; ++k)
    EXPECT_EQ(basis_word(42, k), common::splitmix64(state)) << "k=" << k;
}

TEST(BasisWord, BulkFormMatchesScalarAtEveryAlignment) {
  // basis_words is the lane-parallel fast path of the SAME frozen stream:
  // every output word must equal the scalar basis_word, for counts around
  // the 8-lane group size (tails, exact multiples, sub-group counts) and
  // arbitrary counter offsets.
  for (const std::uint64_t seed : {42ULL, 7ULL, 0ULL}) {
    for (const std::uint64_t counter : {0ULL, 1ULL, 13ULL, 1000000ULL}) {
      for (const std::size_t count : {0UL, 1UL, 7UL, 8UL, 9UL, 64UL, 100UL}) {
        std::vector<std::uint64_t> bulk(count + 1, 0xA5A5A5A5A5A5A5A5ULL);
        basis_words(seed, counter, count, bulk.data());
        for (std::size_t i = 0; i < count; ++i)
          ASSERT_EQ(bulk[i], basis_word(seed, counter + i))
              << "seed=" << seed << " counter=" << counter << " i=" << i;
        EXPECT_EQ(bulk[count], 0xA5A5A5A5A5A5A5A5ULL);  // no overrun
      }
    }
  }
}

// ------------------------------------------------- provider-level identity

TEST(BasisProvider, WordsRowsAndTilesIdenticalAcrossKinds) {
  for (const auto& [nf, dim] : kOddShapes) {
    const auto mat = make_basis_provider(
        BasisKind::kMaterialized, BasisDerivation::kCounterStream, dim, nf, 9);
    const auto rem = make_basis_provider(BasisKind::kRematerialized,
                                         BasisDerivation::kCounterStream, dim,
                                         nf, 9);
    ASSERT_EQ(mat->words_per_row(), rem->words_per_row());
    const std::size_t wpr = mat->words_per_row();

    std::vector<std::uint32_t> all_words(wpr);
    for (std::size_t w = 0; w < wpr; ++w)
      all_words[w] = static_cast<std::uint32_t>(w);
    std::vector<std::uint64_t> wm(wpr), wr(wpr);
    std::vector<float> scratch(nf);
    const float* row_m[1];
    const float* row_r[1];
    for (std::size_t d = 0; d < dim; ++d) {
      mat->sign_words(d, all_words.data(), wpr, wm.data());
      rem->sign_words(d, all_words.data(), wpr, wr.data());
      EXPECT_EQ(wm, wr) << "shape " << nf << "x" << dim << " row " << d;

      mat->float_rows(d, 1, nullptr, row_m);
      rem->float_rows(d, 1, scratch.data(), row_r);
      for (std::size_t f = 0; f < nf; ++f)
        ASSERT_EQ(row_m[0][f], row_r[0][f])
            << "shape " << nf << "x" << dim << " (" << d << "," << f << ")";
    }

    // Full-plane tile and an interior, unaligned tile.
    EXPECT_TRUE(mat->em_tile(0, nf, 0, dim) == rem->em_tile(0, nf, 0, dim));
    if (nf > 2 && dim > 3) {
      EXPECT_TRUE(mat->em_tile(1, nf - 1, 2, dim - 1) ==
                  rem->em_tile(1, nf - 1, 2, dim - 1));
    }
  }
}

TEST(BasisProvider, SignRowsMatchSignWordsAcrossKindsAndGroupSizes) {
  // sign_rows is the blocked encode kernels' bulk surface: row-major packed
  // words for a whole row group, identical across providers and equal word
  // for word to the per-row sign_words accessor, at every group size the
  // encoder uses (1, the kRowGroup of 4) plus odd and overshooting splits.
  for (const auto& [nf, dim] : kOddShapes) {
    const auto mat = make_basis_provider(
        BasisKind::kMaterialized, BasisDerivation::kCounterStream, dim, nf, 9);
    const auto rem = make_basis_provider(BasisKind::kRematerialized,
                                         BasisDerivation::kCounterStream, dim,
                                         nf, 9);
    const std::size_t wpr = mat->words_per_row();
    std::vector<std::uint32_t> all_words(wpr);
    for (std::size_t w = 0; w < wpr; ++w)
      all_words[w] = static_cast<std::uint32_t>(w);
    for (const std::size_t group : {std::size_t{1}, std::size_t{3},
                                    std::size_t{4}, dim}) {
      if (group > dim) continue;
      for (std::size_t d0 = 0; d0 + group <= dim;
           d0 += std::max<std::size_t>(group, dim / 3 + 1)) {
        std::vector<std::uint64_t> bulk_m(group * wpr, ~0ULL);
        std::vector<std::uint64_t> bulk_r(group * wpr, ~0ULL);
        mat->sign_rows(d0, group, bulk_m.data());
        rem->sign_rows(d0, group, bulk_r.data());
        EXPECT_EQ(bulk_m, bulk_r)
            << "shape " << nf << "x" << dim << " rows [" << d0 << ", "
            << d0 + group << ")";
        std::vector<std::uint64_t> row(wpr);
        for (std::size_t i = 0; i < group; ++i) {
          mat->sign_words(d0 + i, all_words.data(), wpr, row.data());
          for (std::size_t w = 0; w < wpr; ++w)
            ASSERT_EQ(bulk_m[i * wpr + w], row[w])
                << "shape " << nf << "x" << dim << " row " << d0 + i
                << " word " << w;
        }
      }
    }
  }
}

TEST(BasisProvider, TailBitsAreMasked) {
  // Padding bits past num_features must be zero in every word surface, or
  // packed popcount-based consumers would see phantom features.
  const auto rem = make_basis_provider(
      BasisKind::kRematerialized, BasisDerivation::kCounterStream, 8, 65, 3);
  const std::uint32_t last = 1;  // word 1 covers feature 64 (+63 pad bits)
  std::uint64_t word = ~0ULL;
  for (std::size_t d = 0; d < 8; ++d) {
    rem->sign_words(d, &last, 1, &word);
    EXPECT_EQ(word & ~3ULL, 0ULL) << "row " << d;  // bits 1..63 of word 1
  }
}

TEST(BasisProvider, ResidentBytesContrast) {
  const std::size_t nf = 128, dim = 4096;
  const auto mat = make_basis_provider(
      BasisKind::kMaterialized, BasisDerivation::kCounterStream, dim, nf, 1);
  const auto rem = make_basis_provider(BasisKind::kRematerialized,
                                       BasisDerivation::kCounterStream, dim,
                                       nf, 1);
  // Both model the same f x D deployed bits...
  EXPECT_EQ(mat->model_bits(), nf * dim);
  EXPECT_EQ(rem->model_bits(), nf * dim);
  // ...but only one of them pays for it in software. The materialized plane
  // holds at least the packed bits plus the 4-byte float mirror; the
  // rematerialized plane is a few dozen bytes of object header.
  EXPECT_GE(mat->resident_bytes(), dim * (nf / 8 + nf * sizeof(float)));
  EXPECT_LE(rem->resident_bytes(), 64u);
}

TEST(BasisProvider, ConfigErrors) {
  EXPECT_THROW(make_basis_provider(BasisKind::kMaterialized,
                                   BasisDerivation::kCounterStream, 0, 8, 1),
               ConfigError);
  EXPECT_THROW(make_basis_provider(BasisKind::kRematerialized,
                                   BasisDerivation::kCounterStream, 8, 0, 1),
               ConfigError);
  // A sequential stream has no random access to rematerialize from.
  EXPECT_THROW(
      make_basis_provider(BasisKind::kRematerialized,
                          BasisDerivation::kLegacySequential, 8, 8, 1),
      ConfigError);
}

TEST(BasisProvider, LegacyDerivationMatchesBitMatrixRandom) {
  // kLegacySequential must keep reproducing the pre-seam plane exactly:
  // BitMatrix::random over an Rng seeded with the encoder seed.
  const std::size_t dim = 33, nf = 127;
  const auto legacy =
      make_basis_provider(BasisKind::kMaterialized,
                          BasisDerivation::kLegacySequential, dim, nf, 77);
  common::Rng rng(77);
  const auto expected = common::BitMatrix::random(dim, nf, rng);
  const auto* mat = dynamic_cast<const MaterializedBasis*>(legacy.get());
  ASSERT_NE(mat, nullptr);
  EXPECT_TRUE(mat->sign_matrix() == expected);
}

// ------------------------------------------------ encoder-level identity

TEST(RematEncoder, EncodeIdenticalToMaterializedOverOddShapes) {
  for (const auto& [nf, dim] : kOddShapes) {
    for (const BinarizeMode mode :
         {BinarizeMode::kSampleMean, BinarizeMode::kZeroThreshold}) {
      auto cm = make_config(nf, dim, BasisKind::kMaterialized);
      auto cr = make_config(nf, dim, BasisKind::kRematerialized);
      cm.binarize = cr.binarize = mode;
      const ProjectionEncoder mat(cm);
      const ProjectionEncoder rem(cr);
      common::Rng rng(nf * 131 + dim);
      for (int trial = 0; trial < 4; ++trial) {
        const auto x = random_features(nf, rng);
        const auto pm = mat.project(x);
        const auto pr = rem.project(x);
        for (std::size_t d = 0; d < dim; ++d)
          ASSERT_EQ(pm[d], pr[d]) << nf << "x" << dim << " dim " << d;
        ASSERT_TRUE(mat.encode(x) == rem.encode(x)) << nf << "x" << dim;
      }
    }
  }
}

TEST(RematEncoder, EncodeBatchIdenticalAtOddCounts) {
  const std::size_t nf = 65, dim = 127;
  const ProjectionEncoder mat(make_config(nf, dim, BasisKind::kMaterialized));
  const ProjectionEncoder rem(
      make_config(nf, dim, BasisKind::kRematerialized));
  common::Rng rng(21);
  // 37 rows: crosses one full 16-sample block plus a 5-row remainder.
  const auto features = random_matrix(37, nf, rng);
  const auto bm = mat.encode_batch(features);
  const auto br = rem.encode_batch(features);
  ASSERT_EQ(bm.size(), br.size());
  for (std::size_t i = 0; i < bm.size(); ++i) {
    EXPECT_TRUE(bm[i] == br[i]) << "row " << i;
    // and the batch path agrees with per-sample encode in both modes
    EXPECT_TRUE(bm[i] == mat.encode(features.row(i))) << "row " << i;
  }
}

TEST(RematEncoder, SparsePathMatchesManualDenseDot) {
  // Mostly-zero input (below the 1/4 density cutoff) routes project()
  // through the word-skipping sparse path; it must equal the naive dense
  // accumulation bit for bit — including a -0.0f input, which the sparse
  // path skips and the dense path adds as a signed zero (a no-op on an
  // accumulator that starts at +0).
  const std::size_t nf = 257, dim = 65;
  for (const BasisKind kind :
       {BasisKind::kMaterialized, BasisKind::kRematerialized}) {
    const ProjectionEncoder enc(make_config(nf, dim, kind));
    std::vector<float> x(nf, 0.0f);
    x[0] = 0.75f;
    x[64] = -1.5f;   // word boundary
    x[65] = 2.0f;
    x[200] = 0.25f;
    x[nf - 1] = 1.0f;
    x[100] = -0.0f;  // negative zero: skipped by the sparse path
    const auto h = enc.project(x);
    std::vector<std::uint32_t> all(enc.basis().words_per_row());
    for (std::size_t w = 0; w < all.size(); ++w)
      all[w] = static_cast<std::uint32_t>(w);
    std::vector<std::uint64_t> words(all.size());
    for (std::size_t d = 0; d < dim; ++d) {
      enc.basis().sign_words(d, all.data(), all.size(), words.data());
      float acc = 0.0f;
      for (std::size_t f = 0; f < nf; ++f) {
        const bool pos = (words[f >> 6] >> (f & 63)) & 1ULL;
        acc += (pos ? 1.0f : -1.0f) * x[f];
      }
      ASSERT_EQ(h[d], acc) << "kind " << static_cast<int>(kind) << " dim "
                           << d;
    }
  }
}

TEST(RematEncoder, SparseAndDensePathsAgreeAtTheCutoff) {
  // Same feature vector pushed through both paths by toggling one value
  // across the nnz * 4 <= nf boundary: results must stay consistent with
  // the manual reference either way (regression guard for the dispatch).
  const std::size_t nf = 64, dim = 32;
  const ProjectionEncoder enc(
      make_config(nf, dim, BasisKind::kRematerialized));
  common::Rng rng(5);
  std::vector<float> x(nf, 0.0f);
  for (std::size_t f = 0; f < 16; ++f)  // exactly nf/4 non-zeros: sparse
    x[f * 4] = static_cast<float>(rng.uniform());
  const auto sparse_h = enc.project(x);
  x[1] = 0.5f;  // 17 non-zeros: dense
  const auto dense_h = enc.project(x);
  for (std::size_t d = 0; d < dim; ++d) {
    // dense result differs from sparse by exactly the one added term's
    // contribution being present; recompute both manually
    std::vector<std::uint32_t> all(enc.basis().words_per_row());
    for (std::size_t w = 0; w < all.size(); ++w)
      all[w] = static_cast<std::uint32_t>(w);
    std::vector<std::uint64_t> words(all.size());
    enc.basis().sign_words(d, all.data(), all.size(), words.data());
    float acc_sparse = 0.0f, acc_dense = 0.0f;
    for (std::size_t f = 0; f < nf; ++f) {
      const bool pos = (words[f >> 6] >> (f & 63)) & 1ULL;
      const float w = pos ? 1.0f : -1.0f;
      acc_dense += w * x[f];
      if (f != 1) acc_sparse += w * x[f];
    }
    ASSERT_EQ(sparse_h[d], acc_sparse) << "dim " << d;
    ASSERT_EQ(dense_h[d], acc_dense) << "dim " << d;
  }
}

TEST(RematEncoder, ConfigErrorsAreTyped) {
  ProjectionEncoderConfig cfg;  // num_features = dim = 0
  EXPECT_THROW(ProjectionEncoder{cfg}, ConfigError);
  cfg.num_features = 8;
  EXPECT_THROW(ProjectionEncoder{cfg}, ConfigError);  // dim still 0
  cfg.dim = 16;
  EXPECT_NO_THROW(ProjectionEncoder{cfg});
}

TEST(RematEncoder, ResidentBytesAreO1AndMemoryBitsUnchanged) {
  const ProjectionEncoder mat(
      make_config(784, 10240, BasisKind::kMaterialized));
  const ProjectionEncoder rem(
      make_config(784, 10240, BasisKind::kRematerialized));
  EXPECT_EQ(mat.memory_bits(), 784u * 10240u);
  EXPECT_EQ(rem.memory_bits(), 784u * 10240u);
  EXPECT_GT(mat.resident_bytes(), 784u * 10240u / 8u);
  EXPECT_LE(rem.resident_bytes(), 64u);
}

}  // namespace
}  // namespace memhd::hdc
