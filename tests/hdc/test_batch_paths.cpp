// Batch-vs-scalar equivalence at the hdc layer: single-centroid AM search
// and the blocked projection-encoder batch path.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/hdc/projection_encoder.hpp"
#include "src/hdc/trainers.hpp"
#include "test_util.hpp"

namespace memhd::hdc {
namespace {

AssociativeMemory make_trained_am(const EncodedDataset& train,
                                  std::size_t dim) {
  AssociativeMemory am(train.num_classes, dim);
  train_single_pass(am, train);
  return am;
}

TEST(AssociativeMemoryBatch, ScoresAndPredictionsMatchScalarPath) {
  for (const std::size_t dim : {65UL, 128UL, 257UL}) {
    const auto train = testing::clustered_encoded(25, dim, 5, 2, dim / 20, 7);
    const auto am = make_trained_am(train, dim);
    const auto queries =
        testing::random_encoded(50, dim, 5, dim).hypervectors;

    std::vector<std::uint32_t> batch;
    am.scores_batch(queries, batch);
    std::vector<std::uint32_t> single;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      am.scores_binary(queries[q], single);
      for (std::size_t c = 0; c < am.num_classes(); ++c)
        ASSERT_EQ(batch[q * am.num_classes() + c], single[c])
            << "dim=" << dim << " q=" << q;
    }

    const auto predicted = am.predict_batch(queries);
    for (std::size_t q = 0; q < queries.size(); ++q)
      ASSERT_EQ(predicted[q], am.predict_binary(queries[q]))
          << "dim=" << dim << " q=" << q;
  }
}

TEST(AssociativeMemoryBatch, EvaluateBinaryMatchesPerQueryLoop) {
  const std::size_t dim = 127;
  const auto train = testing::clustered_encoded(30, dim, 4, 2, 5, 11);
  const auto test = testing::clustered_encoded(20, dim, 4, 2, 5, 12);
  const auto am = make_trained_am(train, dim);

  std::size_t correct = 0;
  std::vector<std::uint32_t> scores;
  for (std::size_t i = 0; i < test.size(); ++i) {
    am.scores_binary(test.hypervectors[i], scores);
    if (static_cast<data::Label>(common::argmax_u32(scores)) ==
        test.labels[i])
      ++correct;
  }
  EXPECT_DOUBLE_EQ(
      evaluate_binary(am, test),
      static_cast<double>(correct) / static_cast<double>(test.size()));
}

// The blocked batch encoder must produce bit-identical hypervectors to the
// per-sample path: it issues the same common::dot calls per (dim, sample)
// pair, only reordered across samples.
TEST(ProjectionEncoderBatch, BatchEncodeBitIdenticalToPerSample) {
  for (const auto binarize :
       {BinarizeMode::kSampleMean, BinarizeMode::kZeroThreshold}) {
    ProjectionEncoderConfig cfg;
    cfg.num_features = 37;  // odd: exercises ragged dot lengths
    cfg.dim = 195;          // odd: tail word in the packed output
    cfg.binarize = binarize;
    cfg.seed = 5;
    const ProjectionEncoder enc(cfg);

    common::Rng rng(17);
    const auto features =
        common::Matrix::random_uniform(29, cfg.num_features, rng);

    const auto batch = enc.encode_batch(features);
    ASSERT_EQ(batch.size(), features.rows());
    for (std::size_t i = 0; i < features.rows(); ++i)
      ASSERT_TRUE(batch[i] == enc.encode(features.row(i))) << "sample " << i;
  }
}

TEST(ProjectionEncoderBatch, SubrangeMatchesFullBatch) {
  ProjectionEncoderConfig cfg;
  cfg.num_features = 16;
  cfg.dim = 64;
  cfg.seed = 9;
  const ProjectionEncoder enc(cfg);

  common::Rng rng(23);
  const auto features = common::Matrix::random_uniform(20, 16, rng);

  const auto full = enc.encode_batch(features);
  const auto sub = enc.encode_batch(features, 5, 11);
  ASSERT_EQ(sub.size(), 11u);
  for (std::size_t i = 0; i < sub.size(); ++i)
    EXPECT_TRUE(sub[i] == full[5 + i]) << "sample " << i;
}

TEST(ProjectionEncoderBatch, EncodeDatasetMatchesPerSampleEncode) {
  const auto split = testing::tiny_separable(31);
  ProjectionEncoderConfig cfg;
  cfg.num_features = split.train.num_features();
  cfg.dim = 97;
  cfg.seed = 2;
  const ProjectionEncoder enc(cfg);

  const auto encoded = enc.encode_dataset(split.train);
  ASSERT_EQ(encoded.size(), split.train.size());
  EXPECT_EQ(encoded.dim, cfg.dim);
  for (std::size_t i = 0; i < split.train.size(); ++i)
    ASSERT_TRUE(encoded.hypervectors[i] == enc.encode(split.train.sample(i)))
        << "sample " << i;
}

}  // namespace
}  // namespace memhd::hdc
