#include "src/hdc/binding.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/hdc/similarity.hpp"

namespace memhd::hdc {
namespace {

using common::BitVector;
using common::Rng;

TEST(Binding, BindIsSelfInverse) {
  Rng rng(1);
  const auto a = BitVector::random(512, rng);
  const auto key = BitVector::random(512, rng);
  EXPECT_TRUE(unbind(bind(a, key), key) == a);
}

TEST(Binding, BindIsCommutative) {
  Rng rng(2);
  const auto a = BitVector::random(256, rng);
  const auto b = BitVector::random(256, rng);
  EXPECT_TRUE(bind(a, b) == bind(b, a));
}

TEST(Binding, BoundVectorDissimilarToInputs) {
  // The defining binding property: bind(a, b) is quasi-orthogonal to both.
  Rng rng(3);
  const std::size_t d = 4096;
  const auto a = BitVector::random(d, rng);
  const auto b = BitVector::random(d, rng);
  const auto ab = bind(a, b);
  EXPECT_NEAR(static_cast<double>(ab.hamming(a)) / d, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(ab.hamming(b)) / d, 0.5, 0.05);
}

TEST(Binding, BindingPreservesDistance) {
  // hamming(bind(a,k), bind(b,k)) == hamming(a, b): binding with a common
  // key is an isometry, which is why bound pairs can still be compared.
  Rng rng(4);
  const auto a = BitVector::random(1024, rng);
  const auto b = BitVector::random(1024, rng);
  const auto k = BitVector::random(1024, rng);
  EXPECT_EQ(bind(a, k).hamming(bind(b, k)), a.hamming(b));
}

TEST(Permute, ZeroShiftIsIdentity) {
  Rng rng(5);
  const auto v = BitVector::random(300, rng);
  EXPECT_TRUE(permute(v, 0) == v);
  EXPECT_TRUE(permute(v, 300) == v);  // full rotation
}

TEST(Permute, ShiftMovesBits) {
  BitVector v(8);
  v.set(0, true);
  v.set(6, true);
  const auto p = permute(v, 3);
  EXPECT_TRUE(p.get(3));
  EXPECT_TRUE(p.get(1));  // (6 + 3) mod 8
  EXPECT_EQ(p.popcount(), 2u);
}

TEST(Permute, Composes) {
  Rng rng(6);
  const auto v = BitVector::random(200, rng);
  EXPECT_TRUE(permute(permute(v, 13), 27) == permute(v, 40));
}

TEST(Permute, BackInverts) {
  Rng rng(7);
  const auto v = BitVector::random(777, rng);
  for (const std::size_t s : {1u, 63u, 64u, 400u, 776u})
    EXPECT_TRUE(permute_back(permute(v, s), s) == v) << "shift " << s;
}

TEST(Permute, PreservesPopcount) {
  Rng rng(8);
  const auto v = BitVector::random(1000, rng);
  EXPECT_EQ(permute(v, 123).popcount(), v.popcount());
}

TEST(Permute, BreaksSimilarity) {
  // A vector and its rotation are quasi-orthogonal — the property that
  // makes permutation usable as a positional tag.
  Rng rng(9);
  const std::size_t d = 4096;
  const auto v = BitVector::random(d, rng);
  EXPECT_NEAR(static_cast<double>(v.hamming(permute(v, 1))) / d, 0.5, 0.05);
}

}  // namespace
}  // namespace memhd::hdc
