#include "src/hdc/bundling.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/hdc/similarity.hpp"

namespace memhd::hdc {
namespace {

using common::BitVector;
using common::Rng;

TEST(Bundling, MajorityOfThreeVectors) {
  const auto a = BitVector::from_bools({1, 1, 0, 0});
  const auto b = BitVector::from_bools({1, 0, 1, 0});
  const auto c = BitVector::from_bools({1, 0, 0, 0});
  const auto m = bundle_majority({a, b, c});
  // Bit 0: 3/3 -> 1. Bit 1: 1/3 -> 0. Bit 2: 1/3 -> 0. Bit 3: 0/3 -> 0.
  EXPECT_EQ(m.to_bools(), (std::vector<bool>{1, 0, 0, 0}));
}

TEST(Bundling, TiesBreakToZero) {
  const auto a = BitVector::from_bools({1, 0});
  const auto b = BitVector::from_bools({0, 1});
  const auto m = bundle_majority({a, b});
  // Each bit has exactly half the weight: strict majority -> 0.
  EXPECT_EQ(m.popcount(), 0u);
}

TEST(Bundling, SingleVectorIsIdentity) {
  Rng rng(1);
  const auto v = BitVector::random(200, rng);
  EXPECT_TRUE(bundle_majority({v}) == v);
}

TEST(Bundling, BundleIsSimilarToEveryInput) {
  // The defining property of superposition: the bundle of a few random HVs
  // is much closer to each of them than chance (~D/4 for random pairs).
  Rng rng(2);
  const std::size_t d = 2048;
  std::vector<BitVector> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(BitVector::random(d, rng));
  const auto m = bundle_majority(inputs);
  const auto outsider = BitVector::random(d, rng);
  for (const auto& in : inputs)
    EXPECT_GT(dot_similarity(m, in), dot_similarity(m, outsider));
}

TEST(Bundling, WeightedAddBiasesResult) {
  BundleAccumulator acc(2);
  acc.add(BitVector::from_bools({1, 0}), 3.0);
  acc.add(BitVector::from_bools({0, 1}), 1.0);
  const auto m = acc.majority();  // cutoff = 2.0
  EXPECT_TRUE(m.get(0));   // 3 > 2
  EXPECT_FALSE(m.get(1));  // 1 < 2
}

TEST(Bundling, NegativeWeightSubtracts) {
  BundleAccumulator acc(1);
  acc.add(BitVector::from_bools({1}), 2.0);
  acc.add(BitVector::from_bools({1}), -1.0);
  EXPECT_DOUBLE_EQ(acc.counts()[0], 1.0);
  EXPECT_DOUBLE_EQ(acc.weight(), 1.0);
  EXPECT_TRUE(acc.majority().get(0));  // 1 > 0.5
}

TEST(Bundling, ExplicitThreshold) {
  BundleAccumulator acc(3);
  acc.add(BitVector::from_bools({1, 1, 0}));
  acc.add(BitVector::from_bools({1, 0, 0}));
  EXPECT_EQ(acc.threshold(0.5).popcount(), 2u);   // counts 2,1,0 > 0.5
  EXPECT_EQ(acc.threshold(1.5).popcount(), 1u);
}

TEST(Bundling, ResetClearsState) {
  BundleAccumulator acc(4);
  acc.add(BitVector::from_bools({1, 1, 1, 1}));
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.weight(), 0.0);
  EXPECT_EQ(acc.majority().popcount(), 0u);
}

TEST(Bundling, IncrementalEqualsOneShot) {
  Rng rng(3);
  std::vector<BitVector> inputs;
  for (int i = 0; i < 7; ++i) inputs.push_back(BitVector::random(128, rng));
  BundleAccumulator acc(128);
  for (const auto& v : inputs) acc.add(v);
  EXPECT_TRUE(acc.majority() == bundle_majority(inputs));
}

class BundleCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(BundleCapacitySweep, RetrievalSurvivesBundlingNVectors) {
  // Capacity property: even bundling N vectors, each input stays the
  // nearest among {inputs + distractors} to itself via the bundle's help?
  // Weaker, robust form: bundle similarity to inputs exceeds similarity to
  // fresh random vectors on average.
  const int n = GetParam();
  Rng rng(100 + n);
  const std::size_t d = 4096;
  std::vector<BitVector> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BitVector::random(d, rng));
  const auto m = bundle_majority(inputs);

  double in_sim = 0.0, out_sim = 0.0;
  for (const auto& v : inputs)
    in_sim += static_cast<double>(dot_similarity(m, v)) / n;
  for (int i = 0; i < n; ++i)
    out_sim += static_cast<double>(
                   dot_similarity(m, BitVector::random(d, rng))) / n;
  EXPECT_GT(in_sim, out_sim);
}

INSTANTIATE_TEST_SUITE_P(Capacity, BundleCapacitySweep,
                         ::testing::Values(3, 9, 33, 101));

}  // namespace
}  // namespace memhd::hdc
