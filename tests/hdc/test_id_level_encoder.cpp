#include "src/hdc/id_level_encoder.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "test_util.hpp"

namespace memhd::hdc {
namespace {

IdLevelEncoderConfig make_config(std::size_t f = 16, std::size_t d = 512,
                                 std::size_t levels = 16,
                                 std::uint64_t seed = 1) {
  IdLevelEncoderConfig cfg;
  cfg.num_features = f;
  cfg.dim = d;
  cfg.num_levels = levels;
  cfg.seed = seed;
  return cfg;
}

TEST(IdLevelEncoder, LevelContinuumMonotoneDistance) {
  const IdLevelEncoder enc(make_config(4, 2048, 9));
  const auto& l0 = enc.level_vector(0);
  std::size_t prev = 0;
  for (std::size_t l = 1; l < 9; ++l) {
    const std::size_t d = l0.hamming(enc.level_vector(l));
    EXPECT_GE(d, prev) << "level distance must grow with level gap";
    prev = d;
  }
  // The extremes differ in ~D/2 bits (near-orthogonal).
  EXPECT_NEAR(static_cast<double>(prev), 1024.0, 8.0);
}

TEST(IdLevelEncoder, AdjacentLevelsFlipFixedQuota) {
  const std::size_t d = 1024, levels = 9;
  const IdLevelEncoder enc(make_config(4, d, levels));
  // Total flips D/2 across L-1 steps => D/(2(L-1)) = 64 per step.
  for (std::size_t l = 1; l < levels; ++l) {
    const std::size_t step =
        enc.level_vector(l - 1).hamming(enc.level_vector(l));
    EXPECT_EQ(step, d / (2 * (levels - 1)));
  }
}

TEST(IdLevelEncoder, IdVectorsAreDistinctRandom) {
  const IdLevelEncoder enc(make_config(8, 1024, 4));
  for (std::size_t i = 1; i < 8; ++i) {
    const auto d = enc.id_vector(0).hamming(enc.id_vector(i));
    EXPECT_GT(d, 1024u / 3);
    EXPECT_LT(d, 2u * 1024u / 3);
  }
}

TEST(IdLevelEncoder, Deterministic) {
  const IdLevelEncoder a(make_config(8, 256, 8, 99));
  const IdLevelEncoder b(make_config(8, 256, 8, 99));
  const std::vector<float> x = {0.1f, 0.9f, 0.5f, 0.3f,
                                0.7f, 0.0f, 1.0f, 0.4f};
  EXPECT_TRUE(a.encode(x) == b.encode(x));
}

TEST(IdLevelEncoder, SimilarFeatureVectorsGetSimilarCodes) {
  const IdLevelEncoder enc(make_config(16, 2048, 64));
  common::Rng rng(5);
  std::vector<float> x(16), near(16), far(16);
  for (std::size_t i = 0; i < 16; ++i) {
    x[i] = static_cast<float>(rng.uniform());
    near[i] = std::min(1.0f, x[i] + 0.02f);  // tiny level shifts
    far[i] = static_cast<float>(rng.uniform());
  }
  const auto hx = enc.encode(x);
  EXPECT_LT(hx.hamming(enc.encode(near)), hx.hamming(enc.encode(far)));
}

TEST(IdLevelEncoder, OutputDensityNearHalf) {
  const IdLevelEncoder enc(make_config(32, 2048, 16));
  common::Rng rng(7);
  std::vector<float> x(32);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  const auto hv = enc.encode(x);
  const double density = static_cast<double>(hv.popcount()) / 2048.0;
  EXPECT_NEAR(density, 0.5, 0.1);
}

TEST(IdLevelEncoder, MemoryBitsIsTableOneFormula) {
  const IdLevelEncoder enc(make_config(784, 1024, 256));
  EXPECT_EQ(enc.memory_bits(), (784u + 256u) * 1024u);
}

TEST(IdLevelEncoder, EncodeDatasetShape) {
  const auto split = testing::tiny_separable();
  IdLevelEncoderConfig cfg;
  cfg.num_features = split.train.num_features();
  cfg.dim = 128;
  cfg.num_levels = 16;
  const IdLevelEncoder enc(cfg);
  const auto encoded = enc.encode_dataset(split.train);
  EXPECT_EQ(encoded.size(), split.train.size());
  EXPECT_EQ(encoded.dim, 128u);
  EXPECT_TRUE(encoded.hypervectors[0] == enc.encode(split.train.sample(0)));
}

TEST(IdLevelEncoder, PaperDefaultLevels) {
  IdLevelEncoderConfig cfg;
  cfg.num_features = 8;
  cfg.dim = 64;
  const IdLevelEncoder enc(cfg);
  EXPECT_EQ(enc.num_levels(), 256u);  // the paper's L
}

}  // namespace
}  // namespace memhd::hdc
