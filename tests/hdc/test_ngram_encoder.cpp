#include "src/hdc/ngram_encoder.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/hdc/similarity.hpp"

namespace memhd::hdc {
namespace {

using common::Rng;

NgramEncoderConfig config(std::size_t n = 3, std::size_t dim = 1024) {
  NgramEncoderConfig cfg;
  cfg.alphabet_size = 8;
  cfg.dim = dim;
  cfg.n = n;
  cfg.seed = 7;
  return cfg;
}

std::vector<std::size_t> random_sequence(std::size_t len,
                                         std::size_t alphabet, Rng& rng) {
  std::vector<std::size_t> s(len);
  for (auto& t : s) t = rng.uniform_index(alphabet);
  return s;
}

TEST(NgramEncoder, Deterministic) {
  const NgramEncoder a(config());
  const NgramEncoder b(config());
  const std::vector<std::size_t> seq = {1, 2, 3, 4, 5, 6, 7, 0, 1, 2};
  EXPECT_TRUE(a.encode(seq) == b.encode(seq));
}

TEST(NgramEncoder, OrderMatters) {
  // "abc" and "cba" share symbols but not order; their gram vectors must
  // be quasi-orthogonal thanks to positional permutation.
  const NgramEncoder enc(config(3, 4096));
  const std::vector<std::size_t> abc = {0, 1, 2};
  const std::vector<std::size_t> cba = {2, 1, 0};
  const auto ga = enc.encode_gram(abc);
  const auto gc = enc.encode_gram(cba);
  EXPECT_NEAR(static_cast<double>(ga.hamming(gc)) / 4096.0, 0.5, 0.05);
}

TEST(NgramEncoder, RepeatedSymbolInDifferentPositionsDiffers) {
  const NgramEncoder enc(config(2, 2048));
  const std::vector<std::size_t> ab = {0, 1};
  const std::vector<std::size_t> ba = {1, 0};
  EXPECT_GT(enc.encode_gram(ab).hamming(enc.encode_gram(ba)), 2048u / 3);
}

TEST(NgramEncoder, SimilarStatisticsGiveSimilarVectors) {
  // Two long draws from the same token distribution are much closer than
  // draws from different distributions.
  const auto cfg = config(3, 2048);
  const NgramEncoder enc(cfg);
  Rng rng(3);
  // Source A favours tokens {0..3}, source B favours {4..7}.
  const auto draw = [&](std::size_t lo) {
    std::vector<std::size_t> s(400);
    for (auto& t : s) t = lo + rng.uniform_index(4);
    return s;
  };
  const auto a1 = enc.encode(draw(0));
  const auto a2 = enc.encode(draw(0));
  const auto b1 = enc.encode(draw(4));
  EXPECT_LT(a1.hamming(a2), a1.hamming(b1));
}

TEST(NgramEncoder, UnigramIsPermutationFreeBundle) {
  // n = 1: the sequence vector is just the majority of item vectors.
  const NgramEncoder enc(config(1, 1024));
  const std::vector<std::size_t> seq = {3, 3, 3, 3, 3};
  // Majority of five copies of the same item == the item itself.
  EXPECT_TRUE(enc.encode(seq) == enc.item(3));
}

TEST(NgramEncoder, SequenceSimilarToItsDominantGram) {
  const NgramEncoder enc(config(3, 4096));
  Rng rng(4);
  std::vector<std::size_t> seq;
  for (int rep = 0; rep < 30; ++rep) {
    seq.push_back(0);
    seq.push_back(1);
    seq.push_back(2);
  }
  const std::vector<std::size_t> gram = {0, 1, 2};
  const auto hv = enc.encode(seq);
  const auto g = enc.encode_gram(gram);
  const auto random_ref = common::BitVector::random(4096, rng);
  EXPECT_GT(dot_similarity(hv, g), dot_similarity(hv, random_ref));
}

TEST(NgramEncoder, MemoryBitsIsItemMemory) {
  const NgramEncoder enc(config(3, 1024));
  EXPECT_EQ(enc.memory_bits(), 8u * 1024u);
}

TEST(NgramEncoder, RejectsTooShortSequence) {
  const NgramEncoder enc(config(3));
  const std::vector<std::size_t> tiny = {0, 1};
  EXPECT_DEATH(enc.encode(tiny), "precondition");
}

class NgramLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NgramLengthSweep, DistinguishesSourcesAtEveryN) {
  NgramEncoderConfig cfg;
  cfg.alphabet_size = 6;
  cfg.dim = 2048;
  cfg.n = GetParam();
  const NgramEncoder enc(cfg);
  Rng rng(50 + GetParam());
  // Source X cycles 0,1,2; source Y cycles 3,4,5.
  std::vector<std::size_t> x, y;
  for (int i = 0; i < 120; ++i) {
    x.push_back(i % 3);
    y.push_back(3 + i % 3);
  }
  const auto hx1 = enc.encode(x);
  const auto hy1 = enc.encode(y);
  std::vector<std::size_t> x2(x.begin() + 3, x.end());
  const auto hx2 = enc.encode(x2);
  EXPECT_LT(hx1.hamming(hx2), hx1.hamming(hy1));
}

INSTANTIATE_TEST_SUITE_P(GramLengths, NgramLengthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace memhd::hdc
