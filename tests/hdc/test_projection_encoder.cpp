#include "src/hdc/projection_encoder.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "test_util.hpp"

namespace memhd::hdc {
namespace {

ProjectionEncoderConfig make_config(std::size_t f = 32, std::size_t d = 256,
                                    std::uint64_t seed = 1) {
  ProjectionEncoderConfig cfg;
  cfg.num_features = f;
  cfg.dim = d;
  cfg.seed = seed;
  return cfg;
}

std::vector<float> random_features(std::size_t f, common::Rng& rng) {
  std::vector<float> x(f);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  return x;
}

TEST(ProjectionEncoder, OutputShape) {
  const ProjectionEncoder enc(make_config());
  common::Rng rng(2);
  const auto hv = enc.encode(random_features(32, rng));
  EXPECT_EQ(hv.size(), 256u);
}

TEST(ProjectionEncoder, DeterministicAcrossInstances) {
  const ProjectionEncoder a(make_config(32, 256, 77));
  const ProjectionEncoder b(make_config(32, 256, 77));
  common::Rng rng(3);
  const auto x = random_features(32, rng);
  EXPECT_TRUE(a.encode(x) == b.encode(x));
  EXPECT_TRUE(a.sign_matrix() == b.sign_matrix());
}

TEST(ProjectionEncoder, SeedChangesMatrix) {
  const ProjectionEncoder a(make_config(32, 256, 1));
  const ProjectionEncoder b(make_config(32, 256, 2));
  EXPECT_FALSE(a.sign_matrix() == b.sign_matrix());
}

TEST(ProjectionEncoder, SignMatrixRoughlyBalanced) {
  const ProjectionEncoder enc(make_config(64, 1024));
  const double density =
      static_cast<double>(enc.sign_matrix().popcount()) / (64.0 * 1024.0);
  EXPECT_NEAR(density, 0.5, 0.02);
}

TEST(ProjectionEncoder, SampleMeanBinarizationBalancesBits) {
  // Thresholding at the per-sample mean keeps roughly half the bits set,
  // which is what makes binary dot similarity informative.
  const ProjectionEncoder enc(make_config(64, 2048));
  common::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto hv = enc.encode(random_features(64, rng));
    const double density = static_cast<double>(hv.popcount()) / 2048.0;
    EXPECT_NEAR(density, 0.5, 0.1);
  }
}

TEST(ProjectionEncoder, ProjectMatchesManualMvm) {
  const auto cfg = make_config(8, 16);
  const ProjectionEncoder enc(cfg);
  common::Rng rng(7);
  const auto x = random_features(8, rng);
  const auto h = enc.project(x);
  ASSERT_EQ(h.size(), 16u);
  for (std::size_t d = 0; d < 16; ++d) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < 8; ++i)
      acc += (enc.sign_matrix().get(d, i) ? 1.0f : -1.0f) * x[i];
    EXPECT_NEAR(h[d], acc, 1e-5f);
  }
}

TEST(ProjectionEncoder, SimilarInputsGetSimilarCodes) {
  const ProjectionEncoder enc(make_config(64, 1024));
  common::Rng rng(9);
  const auto x = random_features(64, rng);
  auto near = x;
  for (auto& v : near) v += 0.01f * static_cast<float>(rng.normal());
  auto far = random_features(64, rng);
  const auto hx = enc.encode(x);
  EXPECT_LT(hx.hamming(enc.encode(near)), hx.hamming(enc.encode(far)));
}

TEST(ProjectionEncoder, EncodeDatasetMatchesPerSampleEncode) {
  const auto split = testing::tiny_separable();
  ProjectionEncoderConfig cfg;
  cfg.num_features = split.train.num_features();
  cfg.dim = 128;
  const ProjectionEncoder enc(cfg);
  const auto encoded = enc.encode_dataset(split.train);
  ASSERT_EQ(encoded.size(), split.train.size());
  EXPECT_EQ(encoded.dim, 128u);
  EXPECT_EQ(encoded.num_classes, split.train.num_classes());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(encoded.hypervectors[i] == enc.encode(split.train.sample(i)));
    EXPECT_EQ(encoded.labels[i], split.train.label(i));
  }
}

TEST(ProjectionEncoder, MemoryBitsIsTableOneFormula) {
  const ProjectionEncoder enc(make_config(784, 10240));
  EXPECT_EQ(enc.memory_bits(), 784u * 10240u);
}

TEST(ProjectionEncoder, ZeroThresholdMode) {
  auto cfg = make_config(16, 64);
  cfg.binarize = BinarizeMode::kZeroThreshold;
  const ProjectionEncoder enc(cfg);
  common::Rng rng(11);
  const auto x = random_features(16, rng);
  const auto h = enc.project(x);
  const auto hv = enc.encode(x);
  for (std::size_t d = 0; d < 64; ++d) EXPECT_EQ(hv.get(d), h[d] > 0.0f);
}

}  // namespace
}  // namespace memhd::hdc
