#include "src/hdc/record_encoder.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace memhd::hdc {
namespace {

RecordEncoderConfig config(std::size_t fields = 4, std::size_t dim = 2048,
                           std::size_t levels = 16) {
  RecordEncoderConfig cfg;
  cfg.num_fields = fields;
  cfg.dim = dim;
  cfg.num_levels = levels;
  cfg.seed = 9;
  return cfg;
}

TEST(RecordEncoder, Deterministic) {
  const RecordEncoder a(config());
  const RecordEncoder b(config());
  const std::vector<float> rec = {0.1f, 0.9f, 0.5f, 0.3f};
  EXPECT_TRUE(a.encode(rec) == b.encode(rec));
}

TEST(RecordEncoder, FieldReadBackRecoversLevels) {
  // The role-filler structure is queryable: unbinding a role recovers the
  // stored level (exact for a few fields, approximate for many).
  const RecordEncoder enc(config(3, 4096, 8));
  const std::vector<float> rec = {0.05f, 0.5f, 0.95f};
  const auto hv = enc.encode(rec);
  EXPECT_EQ(enc.decode_field(hv, 0), 0u);
  EXPECT_EQ(enc.decode_field(hv, 1), 4u);
  EXPECT_EQ(enc.decode_field(hv, 2), 7u);
}

TEST(RecordEncoder, NearbyRecordsAreSimilar) {
  const RecordEncoder enc(config(6, 2048, 32));
  common::Rng rng(3);
  std::vector<float> base(6), near(6), far(6);
  for (std::size_t i = 0; i < 6; ++i) {
    base[i] = static_cast<float>(rng.uniform());
    near[i] = std::min(1.0f, base[i] + 0.02f);
    far[i] = static_cast<float>(rng.uniform());
  }
  const auto hb = enc.encode(base);
  EXPECT_LT(hb.hamming(enc.encode(near)), hb.hamming(enc.encode(far)));
}

TEST(RecordEncoder, SingleFieldChangeMovesVectorProportionally) {
  const RecordEncoder enc(config(4, 2048, 32));
  const std::vector<float> base = {0.5f, 0.5f, 0.5f, 0.5f};
  std::vector<float> small_change = base;
  small_change[2] = 0.55f;
  std::vector<float> big_change = base;
  big_change[2] = 1.0f;
  const auto hb = enc.encode(base);
  EXPECT_LE(hb.hamming(enc.encode(small_change)),
            hb.hamming(enc.encode(big_change)));
}

TEST(RecordEncoder, LevelContinuumShared) {
  const RecordEncoder enc(config(4, 1024, 9));
  std::size_t prev = 0;
  for (std::size_t l = 1; l < 9; ++l) {
    const std::size_t d = enc.level(0).hamming(enc.level(l));
    EXPECT_GE(d, prev);
    prev = d;
  }
  EXPECT_NEAR(static_cast<double>(prev), 512.0, 8.0);
}

TEST(RecordEncoder, MemoryBitsFormula) {
  const RecordEncoder enc(config(10, 1024, 32));
  EXPECT_EQ(enc.memory_bits(), (10u + 32u) * 1024u);
}

TEST(RecordEncoder, OutputDensityNearHalf) {
  const RecordEncoder enc(config(9, 4096, 16));
  common::Rng rng(5);
  std::vector<float> rec(9);
  for (auto& v : rec) v = static_cast<float>(rng.uniform());
  const auto hv = enc.encode(rec);
  EXPECT_NEAR(static_cast<double>(hv.popcount()) / 4096.0, 0.5, 0.1);
}

class RecordFieldSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecordFieldSweep, ReadBackDegradesGracefullyWithFieldCount) {
  // With more bundled fields the read-back gets noisier but must stay
  // within one level of the truth for moderate field counts.
  const std::size_t fields = GetParam();
  const RecordEncoder enc(config(fields, 4096, 8));
  std::vector<float> rec(fields);
  for (std::size_t i = 0; i < fields; ++i)
    rec[i] = static_cast<float>(i % 8) / 8.0f + 0.01f;
  const auto hv = enc.encode(rec);
  for (std::size_t f = 0; f < fields; ++f) {
    const auto truth = static_cast<long>(f % 8);
    const auto got = static_cast<long>(enc.decode_field(hv, f));
    EXPECT_LE(std::abs(got - truth), 1) << "field " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(FieldCounts, RecordFieldSweep,
                         ::testing::Values(2u, 4u, 8u));

}  // namespace
}  // namespace memhd::hdc
