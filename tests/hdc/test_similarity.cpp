#include "src/hdc/similarity.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace memhd::hdc {
namespace {

using common::BitVector;
using common::Rng;

TEST(Similarity, DotOfDisjointVectorsIsZero) {
  BitVector a(8), b(8);
  a.set(0, true);
  a.set(1, true);
  b.set(2, true);
  EXPECT_EQ(dot_similarity(a, b), 0u);
}

TEST(Similarity, DotCountsSharedOnes) {
  BitVector a(8), b(8);
  for (const auto i : {0, 1, 2, 3}) a.set(i, true);
  for (const auto i : {2, 3, 4}) b.set(i, true);
  EXPECT_EQ(dot_similarity(a, b), 2u);
}

TEST(Similarity, HammingOfSelfIsZero) {
  Rng rng(1);
  const auto v = BitVector::random(300, rng);
  EXPECT_EQ(hamming_distance(v, v), 0u);
}

TEST(Similarity, BipolarDotIdentity) {
  // bipolar_dot = D - 2*hamming for +/-1 interpretations.
  Rng rng(2);
  const auto a = BitVector::random(257, rng);
  const auto b = BitVector::random(257, rng);
  std::int64_t naive = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    naive += (a.get(i) ? 1 : -1) * (b.get(i) ? 1 : -1);
  EXPECT_EQ(bipolar_dot(a, b), naive);
  EXPECT_EQ(bipolar_dot(a, a), static_cast<std::int64_t>(a.size()));
}

TEST(Similarity, CosineRangeAndSelf) {
  Rng rng(3);
  const auto a = BitVector::random(512, rng);
  const auto b = BitVector::random(512, rng);
  const double c = cosine_similarity(a, b);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
}

TEST(Similarity, CosineOfEmptyVectorIsZero) {
  BitVector zero(64);
  BitVector one(64);
  one.set(3, true);
  EXPECT_EQ(cosine_similarity(zero, one), 0.0);
}

TEST(Similarity, RandomHypervectorsAreQuasiOrthogonal) {
  // The HDC foundation: random HVs concentrate near D/4 shared ones
  // (each bit 1 with prob 1/2 in both -> intersect with prob 1/4) and
  // near D/2 Hamming distance.
  Rng rng(4);
  const std::size_t d = 4096;
  const auto a = BitVector::random(d, rng);
  const auto b = BitVector::random(d, rng);
  const double dot = static_cast<double>(dot_similarity(a, b));
  EXPECT_NEAR(dot / d, 0.25, 0.03);
  const double ham = static_cast<double>(hamming_distance(a, b));
  EXPECT_NEAR(ham / d, 0.5, 0.03);
}

TEST(Similarity, DotRankingTracksNoiseLevel) {
  // A query must be more similar to a lightly corrupted copy of itself than
  // to a heavily corrupted one — the noise-robustness property associative
  // search relies on.
  Rng rng(5);
  const std::size_t d = 2048;
  const auto base = BitVector::random(d, rng);
  auto light = base;
  auto heavy = base;
  for (std::size_t i = 0; i < d / 16; ++i) light.flip(rng.uniform_index(d));
  for (std::size_t i = 0; i < d / 2; ++i) heavy.flip(rng.uniform_index(d));
  EXPECT_GT(dot_similarity(base, light), dot_similarity(base, heavy));
  EXPECT_LT(hamming_distance(base, light), hamming_distance(base, heavy));
}

}  // namespace
}  // namespace memhd::hdc
