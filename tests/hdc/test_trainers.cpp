#include "src/hdc/trainers.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace memhd::hdc {
namespace {

TEST(SinglePass, LearnsPrototypeClusters) {
  // One prototype per class, light noise: single-pass must be near-perfect.
  const auto train = testing::clustered_encoded(
      /*per_class=*/40, /*dim=*/512, /*num_classes=*/4, /*modes=*/1,
      /*noise_bits=*/30);
  const auto test = testing::clustered_encoded(20, 512, 4, 1, 30, /*seed=*/5);
  AssociativeMemory am(4, 512);
  train_single_pass(am, train);
  EXPECT_GT(evaluate_binary(am, train), 0.95);
}

TEST(SinglePass, PopulatesBothRepresentations) {
  const auto train = testing::clustered_encoded(10, 128, 3, 1, 8);
  AssociativeMemory am(3, 128);
  train_single_pass(am, train);
  // FP rows must be non-zero and binary rows roughly half dense.
  bool nonzero = false;
  for (const float v : am.fp().row(0))
    if (v != 0.0f) nonzero = true;
  EXPECT_TRUE(nonzero);
  const double density =
      static_cast<double>(am.binary().popcount()) / (3.0 * 128.0);
  EXPECT_GT(density, 0.2);
  EXPECT_LT(density, 0.8);
}

TEST(Iterative, ImprovesOverSinglePassOnMultiModalData) {
  // Multi-modal classes are where plain prototype averaging struggles;
  // iterative refinement must recover some of the gap on training data.
  const auto train = testing::clustered_encoded(
      /*per_class=*/60, /*dim=*/256, /*num_classes=*/4, /*modes=*/3,
      /*noise_bits=*/20);
  AssociativeMemory am(4, 256);
  train_single_pass(am, train);
  const double before = evaluate_binary(am, train);

  IterativeConfig cfg;
  cfg.epochs = 15;
  cfg.learning_rate = 0.1f;
  cfg.quantization_aware = true;
  const auto trace = train_iterative(am, train, cfg);
  const double after = evaluate_binary(am, train);
  EXPECT_GE(after, before - 0.02);
  EXPECT_EQ(trace.epochs_run, 15u);
  EXPECT_EQ(trace.train_accuracy.size(), 15u);
}

TEST(Iterative, TraceAccuraciesAreProbabilities) {
  const auto train = testing::clustered_encoded(20, 128, 3, 2, 10);
  AssociativeMemory am(3, 128);
  train_single_pass(am, train);
  IterativeConfig cfg;
  cfg.epochs = 5;
  const auto trace = train_iterative(am, train, cfg);
  for (const double a : trace.train_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Iterative, FpModeAlsoLearns) {
  const auto train = testing::clustered_encoded(30, 256, 3, 2, 15);
  AssociativeMemory am(3, 256);
  train_single_pass(am, train);
  IterativeConfig cfg;
  cfg.epochs = 10;
  cfg.quantization_aware = false;  // classic FP iterative HDC
  train_iterative(am, train, cfg);
  EXPECT_GT(evaluate_binary(am, train), 0.7);
}

TEST(Evaluate, EmptySetYieldsZero) {
  AssociativeMemory am(2, 64);
  EncodedDataset empty;
  empty.dim = 64;
  empty.num_classes = 2;
  EXPECT_EQ(evaluate_binary(am, empty), 0.0);
  EXPECT_EQ(evaluate_fp(am, empty), 0.0);
}

TEST(Evaluate, PerfectMemoryScoresOne) {
  // AM rows = exact prototypes; test samples = the prototypes themselves.
  const auto data = testing::clustered_encoded(5, 128, 3, 1, 0);
  AssociativeMemory am(3, 128);
  train_single_pass(am, data);
  EXPECT_EQ(evaluate_binary(am, data), 1.0);
}

}  // namespace
}  // namespace memhd::hdc
