#include "src/imc/cost_model.hpp"

#include <gtest/gtest.h>

namespace memhd::imc {
namespace {

constexpr ArrayGeometry k128{128, 128};

TEST(CostModel, EnergyLinearInActivations) {
  const CostModel cm;
  const double one = cm.mvm_energy_pj(1, k128);
  EXPECT_GT(one, 0.0);
  EXPECT_DOUBLE_EQ(cm.mvm_energy_pj(80, k128), 80.0 * one);
  EXPECT_DOUBLE_EQ(cm.mvm_energy_pj(0, k128), 0.0);
}

TEST(CostModel, EnergyScalesWithGeometry) {
  const CostModel cm;
  const double base = cm.mvm_energy_pj(1, k128);
  EXPECT_DOUBLE_EQ(cm.mvm_energy_pj(1, ArrayGeometry{256, 256}), 4.0 * base);
  EXPECT_DOUBLE_EQ(cm.mvm_energy_pj(1, ArrayGeometry{64, 64}), base / 4.0);
}

TEST(CostModel, LatencyLinearInCycles) {
  const CostModel cm;
  EXPECT_DOUBLE_EQ(cm.latency_ns(10), 10.0 * cm.params().cycle_time_ns);
}

TEST(CostModel, WriteEnergyLinearInCells) {
  const CostModel cm;
  EXPECT_DOUBLE_EQ(cm.write_energy_pj(1000),
                   1000.0 * cm.params().write_energy_per_cell_pj);
}

TEST(CostModel, Fig7HeadlineRatios) {
  // MEMHD is 80x more energy-efficient than BasicHDC and 4x more than
  // LeHDC on the AM search (paper §IV-F) — pure activation ratios, so they
  // must hold for any positive per-MVM constant.
  const CostModel cm;
  const auto basic = map_basic_model(784, 10240, 10, k128);
  const auto lehdc_am = map_dense({400, 10}, k128);
  const auto memhd = map_memhd_model(784, 128, 128, k128);

  const double e_basic = cm.am_energy_pj(basic, k128);
  const double e_memhd = cm.am_energy_pj(memhd, k128);
  EXPECT_DOUBLE_EQ(e_basic / e_memhd, 80.0);

  const double e_lehdc = cm.mvm_energy_pj(lehdc_am.activations, k128);
  EXPECT_DOUBLE_EQ(e_lehdc / e_memhd, 4.0);
}

TEST(CostModel, PartitioningKeepsEnergyConstant) {
  // Fig. 7: partitioning trades arrays for cycles at equal energy.
  const CostModel cm;
  const auto dense = map_basic_model(784, 10240, 10, k128);
  const auto part = map_partitioned_model(784, 10240, 10, 10, k128);
  EXPECT_DOUBLE_EQ(cm.am_energy_pj(dense, k128), cm.am_energy_pj(part, k128));
  EXPECT_LT(part.am_cost.arrays, dense.am_cost.arrays);
}

TEST(CostModel, TotalIncludesEncoder) {
  const CostModel cm;
  const auto memhd = map_memhd_model(784, 128, 128, k128);
  EXPECT_GT(cm.total_energy_pj(memhd, k128), cm.am_energy_pj(memhd, k128));
  EXPECT_DOUBLE_EQ(
      cm.total_energy_pj(memhd, k128),
      cm.mvm_energy_pj(memhd.em_cost.activations + memhd.am_cost.activations,
                       k128));
}

TEST(CostModel, CustomParams) {
  CostParams p;
  p.mvm_energy_pj = 100.0;
  p.cycle_time_ns = 2.0;
  const CostModel cm(p);
  EXPECT_DOUBLE_EQ(cm.mvm_energy_pj(3, k128), 300.0);
  EXPECT_DOUBLE_EQ(cm.latency_ns(3), 6.0);
}

}  // namespace
}  // namespace memhd::imc
