#include "src/imc/imc_array.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace memhd::imc {
namespace {

using common::BitMatrix;
using common::BitVector;
using common::Rng;

TEST(ImcArray, GeometryAndInitialState) {
  ImcArray a(ArrayGeometry{4, 8});
  EXPECT_EQ(a.geometry().rows, 4u);
  EXPECT_EQ(a.geometry().cols, 8u);
  EXPECT_EQ(a.activations(), 0u);
  EXPECT_EQ(a.write_passes(), 0u);
  EXPECT_FALSE(a.weight(0, 0));
}

TEST(ImcArray, ProgramSmallerTileLeavesRestZero) {
  Rng rng(1);
  ImcArray a(ArrayGeometry{8, 8});
  BitMatrix tile(3, 5);
  tile.set(0, 0, true);
  tile.set(2, 4, true);
  a.program(tile);
  EXPECT_TRUE(a.weight(0, 0));
  EXPECT_TRUE(a.weight(2, 4));
  EXPECT_FALSE(a.weight(7, 7));
  EXPECT_EQ(a.used_rows(), 3u);
  EXPECT_EQ(a.used_cols(), 5u);
  EXPECT_EQ(a.write_passes(), 1u);
}

TEST(ImcArray, BinaryMvmMatchesNaive) {
  Rng rng(2);
  ImcArray a(ArrayGeometry{16, 12});
  const BitMatrix tile = BitMatrix::random(16, 12, rng);
  a.program(tile);
  const auto input = BitVector::random(16, rng);
  const auto out = a.mvm_binary(input);
  ASSERT_EQ(out.size(), 12u);
  for (std::size_t c = 0; c < 12; ++c) {
    std::uint32_t naive = 0;
    for (std::size_t r = 0; r < 16; ++r)
      if (input.get(r) && tile.get(r, c)) ++naive;
    EXPECT_EQ(out[c], naive) << "column " << c;
  }
  EXPECT_EQ(a.activations(), 1u);
}

TEST(ImcArray, RealMvmMatchesNaive) {
  Rng rng(3);
  ImcArray a(ArrayGeometry{8, 6});
  const BitMatrix tile = BitMatrix::random(8, 6, rng);
  a.program(tile);
  std::vector<float> x(8);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  const auto out = a.mvm_real(x);
  for (std::size_t c = 0; c < 6; ++c) {
    float naive = 0.0f;
    for (std::size_t r = 0; r < 8; ++r)
      if (tile.get(r, c)) naive += x[r];
    EXPECT_NEAR(out[c], naive, 1e-6f);
  }
}

TEST(ImcArray, PartialInputDrivesOnlyGivenRows) {
  ImcArray a(ArrayGeometry{8, 2});
  BitMatrix tile(8, 2);
  for (std::size_t r = 0; r < 8; ++r) tile.set(r, 0, true);
  a.program(tile);
  BitVector input(3);  // only first three wordlines driven
  input.fill(true);
  const auto out = a.mvm_binary(input);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 0u);
}

TEST(ImcArray, CountersAccumulateAndReset) {
  Rng rng(4);
  ImcArray a(ArrayGeometry{4, 4});
  a.program(BitMatrix(2, 2));
  const auto input = BitVector::random(4, rng);
  a.mvm_binary(input);
  a.mvm_binary(input);
  std::vector<float> x(4, 0.5f);
  a.mvm_real(x);
  EXPECT_EQ(a.activations(), 3u);
  EXPECT_EQ(a.write_passes(), 1u);
  a.reset_counters();
  EXPECT_EQ(a.activations(), 0u);
  EXPECT_EQ(a.write_passes(), 0u);
}

TEST(ImcArray, ProgramCellUpdatesUsage) {
  ImcArray a(ArrayGeometry{8, 8});
  a.program_cell(5, 6, true);
  EXPECT_TRUE(a.weight(5, 6));
  EXPECT_EQ(a.used_rows(), 6u);
  EXPECT_EQ(a.used_cols(), 7u);
}

TEST(ImcArray, PaperGeometryDefault) {
  ArrayGeometry g;
  EXPECT_EQ(g.rows, 128u);
  EXPECT_EQ(g.cols, 128u);
  EXPECT_EQ(g.cells(), 16384u);
}

}  // namespace
}  // namespace memhd::imc
