#include "src/imc/imc_array.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace memhd::imc {
namespace {

using common::BitMatrix;
using common::BitVector;
using common::Rng;

TEST(ImcArray, GeometryAndInitialState) {
  ImcArray a(ArrayGeometry{4, 8});
  EXPECT_EQ(a.geometry().rows, 4u);
  EXPECT_EQ(a.geometry().cols, 8u);
  EXPECT_EQ(a.activations(), 0u);
  EXPECT_EQ(a.write_passes(), 0u);
  EXPECT_FALSE(a.weight(0, 0));
}

TEST(ImcArray, ProgramSmallerTileLeavesRestZero) {
  Rng rng(1);
  ImcArray a(ArrayGeometry{8, 8});
  BitMatrix tile(3, 5);
  tile.set(0, 0, true);
  tile.set(2, 4, true);
  a.program(tile);
  EXPECT_TRUE(a.weight(0, 0));
  EXPECT_TRUE(a.weight(2, 4));
  EXPECT_FALSE(a.weight(7, 7));
  EXPECT_EQ(a.used_rows(), 3u);
  EXPECT_EQ(a.used_cols(), 5u);
  EXPECT_EQ(a.write_passes(), 1u);
}

TEST(ImcArray, BinaryMvmMatchesNaive) {
  Rng rng(2);
  ImcArray a(ArrayGeometry{16, 12});
  const BitMatrix tile = BitMatrix::random(16, 12, rng);
  a.program(tile);
  const auto input = BitVector::random(16, rng);
  const auto out = a.mvm_binary(input);
  ASSERT_EQ(out.size(), 12u);
  for (std::size_t c = 0; c < 12; ++c) {
    std::uint32_t naive = 0;
    for (std::size_t r = 0; r < 16; ++r)
      if (input.get(r) && tile.get(r, c)) ++naive;
    EXPECT_EQ(out[c], naive) << "column " << c;
  }
  EXPECT_EQ(a.activations(), 1u);
}

TEST(ImcArray, RealMvmMatchesNaive) {
  Rng rng(3);
  ImcArray a(ArrayGeometry{8, 6});
  const BitMatrix tile = BitMatrix::random(8, 6, rng);
  a.program(tile);
  std::vector<float> x(8);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  const auto out = a.mvm_real(x);
  for (std::size_t c = 0; c < 6; ++c) {
    float naive = 0.0f;
    for (std::size_t r = 0; r < 8; ++r)
      if (tile.get(r, c)) naive += x[r];
    EXPECT_NEAR(out[c], naive, 1e-6f);
  }
}

TEST(ImcArray, PartialInputDrivesOnlyGivenRows) {
  ImcArray a(ArrayGeometry{8, 2});
  BitMatrix tile(8, 2);
  for (std::size_t r = 0; r < 8; ++r) tile.set(r, 0, true);
  a.program(tile);
  BitVector input(3);  // only first three wordlines driven
  input.fill(true);
  const auto out = a.mvm_binary(input);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 0u);
}

TEST(ImcArray, CountersAccumulateAndReset) {
  Rng rng(4);
  ImcArray a(ArrayGeometry{4, 4});
  a.program(BitMatrix(2, 2));
  const auto input = BitVector::random(4, rng);
  a.mvm_binary(input);
  a.mvm_binary(input);
  std::vector<float> x(4, 0.5f);
  a.mvm_real(x);
  EXPECT_EQ(a.activations(), 3u);
  EXPECT_EQ(a.write_passes(), 1u);
  a.reset_counters();
  EXPECT_EQ(a.activations(), 0u);
  EXPECT_EQ(a.write_passes(), 0u);
}

TEST(ImcArray, ProgramCellUpdatesUsage) {
  ImcArray a(ArrayGeometry{8, 8});
  a.program_cell(5, 6, true);
  EXPECT_TRUE(a.weight(5, 6));
  EXPECT_EQ(a.used_rows(), 6u);
  EXPECT_EQ(a.used_cols(), 7u);
}

TEST(ImcArray, PaperGeometryDefault) {
  ArrayGeometry g;
  EXPECT_EQ(g.rows, 128u);
  EXPECT_EQ(g.cols, 128u);
  EXPECT_EQ(g.cells(), 16384u);
}

TEST(ImcArray, BatchMvmBitIdenticalToPerQuery) {
  // The wordline-parallel block path must reproduce per-query mvm_binary
  // exactly, including odd geometries that straddle word boundaries.
  Rng rng(10);
  for (const auto g : {ArrayGeometry{16, 16}, ArrayGeometry{100, 36},
                       ArrayGeometry{128, 128}, ArrayGeometry{65, 130}}) {
    ImcArray batch_array(g);
    ImcArray scalar_array(g);
    const BitMatrix tile = BitMatrix::random(g.rows, g.cols, rng);
    batch_array.program(tile);
    scalar_array.program(tile);

    const std::size_t batch = 13;
    const BitMatrix inputs = BitMatrix::random(batch, g.rows, rng);
    const auto out = batch_array.mvm_binary_batch(inputs);
    ASSERT_EQ(out.size(), batch * g.cols);
    for (std::size_t q = 0; q < batch; ++q) {
      const auto single = scalar_array.mvm_binary(inputs.row_vector(q));
      for (std::size_t c = 0; c < g.cols; ++c)
        ASSERT_EQ(out[q * g.cols + c], single[c])
            << g.rows << "x" << g.cols << " q=" << q << " c=" << c;
    }
    // One bump of the batch size == one increment per query.
    EXPECT_EQ(batch_array.activations(), scalar_array.activations());
    EXPECT_EQ(batch_array.activations(), batch);
  }
}

TEST(ImcArray, BatchMvmSpanOverloadHandlesShortInputs) {
  // Per-query vectors shorter than the wordline count leave the missing
  // rows undriven, exactly as mvm_binary does.
  Rng rng(11);
  const BitMatrix tile = BitMatrix::random(32, 8, rng);
  ImcArray a(ArrayGeometry{32, 8});
  a.program(tile);
  std::vector<BitVector> inputs;
  inputs.push_back(BitVector::random(5, rng));
  inputs.push_back(BitVector::random(32, rng));
  inputs.push_back(BitVector(0));
  const auto out = a.mvm_binary_batch(std::span<const BitVector>(inputs));
  ImcArray b(ArrayGeometry{32, 8});
  b.program(tile);
  for (std::size_t q = 0; q < inputs.size(); ++q) {
    const auto single = b.mvm_binary(inputs[q]);
    for (std::size_t c = 0; c < 8; ++c)
      ASSERT_EQ(out[q * 8 + c], single[c]) << "q=" << q;
  }
}

TEST(ImcArray, ReprogrammingInvalidatesBatchPath) {
  // The batch path caches a repack of the weight plane; program() and
  // program_cell() must invalidate it.
  Rng rng(12);
  ImcArray a(ArrayGeometry{16, 16});
  a.program(BitMatrix::random(16, 16, rng));
  const BitMatrix inputs = BitMatrix::random(4, 16, rng);
  a.mvm_binary_batch(inputs);  // builds the cache

  const BitMatrix tile2 = BitMatrix::random(16, 16, rng);
  a.program(tile2);
  const auto out = a.mvm_binary_batch(inputs);
  for (std::size_t q = 0; q < 4; ++q)
    for (std::size_t c = 0; c < 16; ++c) {
      std::uint32_t naive = 0;
      for (std::size_t r = 0; r < 16; ++r)
        if (inputs.get(q, r) && tile2.get(r, c)) ++naive;
      ASSERT_EQ(out[q * 16 + c], naive) << "q=" << q << " c=" << c;
    }

  a.program_cell(0, 0, !a.weight(0, 0));
  const auto out2 = a.mvm_binary_batch(inputs);
  for (std::size_t q = 0; q < 4; ++q)
    for (std::size_t c = 0; c < 16; ++c) {
      std::uint32_t naive = 0;
      for (std::size_t r = 0; r < 16; ++r)
        if (inputs.get(q, r) && a.weight(r, c)) ++naive;
      ASSERT_EQ(out2[q * 16 + c], naive) << "q=" << q << " c=" << c;
    }
}

}  // namespace
}  // namespace memhd::imc
