// Exact reproduction of Table II and the Fig. 7 mapping arithmetic.
// Every integer asserted here is copied from the paper; the mapping engine
// must match them all.
#include "src/imc/mapping.hpp"

#include <gtest/gtest.h>

namespace memhd::imc {
namespace {

constexpr ArrayGeometry k128{128, 128};

TEST(MappingDense, TableII_MnistBasic) {
  // Basic: EM 784x10240, AM 10240x10 on 128x128 arrays.
  const auto model = map_basic_model(784, 10240, 10, k128);
  EXPECT_EQ(model.em_cost.cycles, 560u);
  EXPECT_EQ(model.em_cost.arrays, 560u);
  EXPECT_EQ(model.am_cost.cycles, 80u);
  EXPECT_EQ(model.am_cost.arrays, 80u);
  EXPECT_EQ(model.total_cycles(), 640u);
  EXPECT_EQ(model.total_arrays(), 640u);
  EXPECT_NEAR(model.am_cost.utilization, 0.0781, 1e-4);  // 7.81%
}

TEST(MappingPartitioned, TableII_MnistP5) {
  // Partitioning P=5: AM structure 2048x50.
  const auto model = map_partitioned_model(784, 10240, 10, 5, k128);
  EXPECT_EQ(model.am.rows, 2048u);
  EXPECT_EQ(model.am.cols, 50u);
  EXPECT_EQ(model.em_cost.cycles, 560u);   // EM unchanged
  EXPECT_EQ(model.am_cost.cycles, 80u);    // cycles do NOT improve
  EXPECT_EQ(model.am_cost.arrays, 16u);    // arrays do
  EXPECT_EQ(model.total_cycles(), 640u);
  EXPECT_EQ(model.total_arrays(), 576u);
  EXPECT_NEAR(model.am_cost.utilization, 0.3906, 1e-4);  // 39.06%
}

TEST(MappingPartitioned, TableII_MnistP10) {
  const auto model = map_partitioned_model(784, 10240, 10, 10, k128);
  EXPECT_EQ(model.am.rows, 1024u);
  EXPECT_EQ(model.am.cols, 100u);
  EXPECT_EQ(model.am_cost.cycles, 80u);
  EXPECT_EQ(model.am_cost.arrays, 8u);
  EXPECT_EQ(model.total_cycles(), 640u);
  EXPECT_EQ(model.total_arrays(), 568u);
  EXPECT_NEAR(model.am_cost.utilization, 0.7813, 1e-4);  // 78.13%
}

TEST(MappingMemhd, TableII_Mnist128x128) {
  const auto model = map_memhd_model(784, 128, 128, k128);
  EXPECT_EQ(model.em_cost.cycles, 7u);
  EXPECT_EQ(model.em_cost.arrays, 7u);
  EXPECT_EQ(model.am_cost.cycles, 1u);   // one-shot associative search
  EXPECT_EQ(model.am_cost.arrays, 1u);
  EXPECT_EQ(model.total_cycles(), 8u);
  EXPECT_EQ(model.total_arrays(), 8u);
  EXPECT_DOUBLE_EQ(model.am_cost.utilization, 1.0);  // 100%
}

TEST(MappingImprovements, TableII_MnistRatios) {
  // Improvement column: 80x cycles, 71x arrays vs the best baseline.
  const auto basic = map_basic_model(784, 10240, 10, k128);
  const auto p10 = map_partitioned_model(784, 10240, 10, 10, k128);
  const auto memhd = map_memhd_model(784, 128, 128, k128);
  EXPECT_EQ(basic.total_cycles() / memhd.total_cycles(), 80u);
  EXPECT_EQ(p10.total_cycles() / memhd.total_cycles(), 80u);
  EXPECT_EQ(p10.total_arrays() / memhd.total_arrays(), 71u);
  // Utilization gain vs best partitioning: +21.87 percentage points.
  EXPECT_NEAR(memhd.am_cost.utilization - p10.am_cost.utilization, 0.2187,
              1e-4);
}

TEST(MappingDense, TableII_IsoletBasic) {
  // ISOLET: EM 617x10240 -> 5 x 80 tiles = 400; AM 10240x26 -> 80.
  const auto model = map_basic_model(617, 10240, 26, k128);
  EXPECT_EQ(model.em_cost.cycles, 400u);
  EXPECT_EQ(model.em_cost.arrays, 400u);
  EXPECT_EQ(model.am_cost.cycles, 80u);
  EXPECT_EQ(model.am_cost.arrays, 80u);
  EXPECT_EQ(model.total_cycles(), 480u);
  EXPECT_EQ(model.total_arrays(), 480u);
  EXPECT_NEAR(model.am_cost.utilization, 0.2031, 1e-4);  // 20.31%
}

TEST(MappingPartitioned, TableII_IsoletP2) {
  // P=2: AM 5120x52.
  const auto model = map_partitioned_model(617, 10240, 26, 2, k128);
  EXPECT_EQ(model.am.rows, 5120u);
  EXPECT_EQ(model.am.cols, 52u);
  EXPECT_EQ(model.am_cost.cycles, 80u);
  EXPECT_EQ(model.am_cost.arrays, 40u);
  EXPECT_EQ(model.total_arrays(), 440u);
  EXPECT_NEAR(model.am_cost.utilization, 0.4063, 1e-4);  // 40.63%
}

TEST(MappingPartitioned, TableII_IsoletP4) {
  // P=4: AM 2560x104.
  const auto model = map_partitioned_model(617, 10240, 26, 4, k128);
  EXPECT_EQ(model.am.rows, 2560u);
  EXPECT_EQ(model.am.cols, 104u);
  EXPECT_EQ(model.am_cost.cycles, 80u);
  EXPECT_EQ(model.am_cost.arrays, 20u);
  EXPECT_EQ(model.total_arrays(), 420u);
  EXPECT_NEAR(model.am_cost.utilization, 0.8125, 1e-4);  // 81.25%
}

TEST(MappingMemhd, TableII_Isolet512x128) {
  const auto model = map_memhd_model(617, 512, 128, k128);
  EXPECT_EQ(model.em_cost.cycles, 20u);
  EXPECT_EQ(model.em_cost.arrays, 20u);
  EXPECT_EQ(model.am_cost.cycles, 4u);   // few-shot: 4 row tiles
  EXPECT_EQ(model.am_cost.arrays, 4u);
  EXPECT_EQ(model.total_cycles(), 24u);
  EXPECT_EQ(model.total_arrays(), 24u);
  EXPECT_DOUBLE_EQ(model.am_cost.utilization, 1.0);
}

TEST(MappingImprovements, TableII_IsoletRatios) {
  const auto basic = map_basic_model(617, 10240, 26, k128);
  const auto p4 = map_partitioned_model(617, 10240, 26, 4, k128);
  const auto memhd = map_memhd_model(617, 512, 128, k128);
  EXPECT_EQ(basic.total_cycles() / memhd.total_cycles(), 20u);
  EXPECT_NEAR(static_cast<double>(p4.total_arrays()) /
                  static_cast<double>(memhd.total_arrays()),
              17.5, 1e-9);
  EXPECT_NEAR(memhd.am_cost.utilization - p4.am_cost.utilization, 0.1875,
              1e-4);
}

TEST(MappingFig7, AmActivationsForIsoAccuracyModels) {
  // Fig. 7 (FMNIST, iso-accuracy): AM-only activation counts drive the
  // normalized energy bars.
  // BasicHDC 10240x10 dense: 80. BasicHDC 1024x100 (P=10): 8 arrays x 10
  // passes = 80 — energy flat under partitioning.
  EXPECT_EQ(map_dense({10240, 10}, k128).activations, 80u);
  EXPECT_EQ(map_partitioned(10240, 10, 10, k128).activations, 80u);
  EXPECT_EQ(map_partitioned(10240, 10, 10, k128).arrays, 8u);
  // SearcHD 8000x10: 63 arrays. QuantHD 1600x10: 13. LeHDC 400x10: 4.
  EXPECT_EQ(map_dense({8000, 10}, k128).activations, 63u);
  EXPECT_EQ(map_dense({1600, 10}, k128).activations, 13u);
  EXPECT_EQ(map_dense({400, 10}, k128).activations, 4u);
  // MEMHD 128x128: single-cycle, single-array associative search.
  const auto memhd = map_dense({128, 128}, k128);
  EXPECT_EQ(memhd.activations, 1u);
  EXPECT_EQ(memhd.arrays, 1u);
  // Headline ratios: 80x vs BasicHDC, 4x vs LeHDC.
  EXPECT_EQ(map_dense({10240, 10}, k128).activations / memhd.activations,
            80u);
  EXPECT_EQ(map_dense({400, 10}, k128).activations / memhd.activations, 4u);
}

TEST(MappingInvariants, DenseCyclesEqualArrays) {
  for (const std::size_t rows : {64u, 100u, 512u, 10000u})
    for (const std::size_t cols : {10u, 26u, 128u, 600u}) {
      const auto cost = map_dense({rows, cols}, k128);
      EXPECT_EQ(cost.cycles, cost.arrays);
      EXPECT_EQ(cost.cycles, cost.row_tiles * cost.col_tiles);
      EXPECT_GT(cost.utilization, 0.0);
      EXPECT_LE(cost.utilization, 1.0 + 1e-12);
    }
}

TEST(MappingInvariants, PartitioningNeverReducesCycles) {
  for (const std::size_t p : {1u, 2u, 4u, 5u, 8u, 10u}) {
    const auto part = map_partitioned(10240, 10, p, k128);
    const auto dense = map_dense({10240, 10}, k128);
    EXPECT_GE(part.cycles, dense.cycles) << "P=" << p;
    EXPECT_LE(part.arrays, dense.arrays) << "P=" << p;
  }
}

TEST(MappingInvariants, PartitioningConservesMappedCells) {
  // Reshaping cannot change the number of logical weight cells, so
  // utilization * capacity is constant across P (when shapes divide evenly).
  const auto dense = map_dense({10240, 10}, k128);
  for (const std::size_t p : {2u, 5u, 10u}) {
    const auto part = map_partitioned(10240, 10, p, k128);
    EXPECT_NEAR(part.utilization * static_cast<double>(part.arrays),
                dense.utilization * static_cast<double>(dense.arrays), 1e-9);
  }
}

TEST(MappingGeometry, NonSquareArrays) {
  const ArrayGeometry wide{64, 256};
  const auto cost = map_dense({128, 256}, wide);
  EXPECT_EQ(cost.row_tiles, 2u);
  EXPECT_EQ(cost.col_tiles, 1u);
  EXPECT_EQ(cost.arrays, 2u);
  EXPECT_DOUBLE_EQ(cost.utilization, 1.0);
}

}  // namespace
}  // namespace memhd::imc
