#include "src/imc/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/initializer.hpp"
#include "src/imc/robustness.hpp"
#include "test_util.hpp"

namespace memhd::imc {
namespace {

using common::BitMatrix;
using common::Rng;

TEST(WeightFlips, ZeroProbabilityIsIdentity) {
  Rng rng(1);
  BitMatrix m = BitMatrix::random(16, 64, rng);
  const BitMatrix original = m;
  EXPECT_EQ(inject_weight_flips(m, 0.0, rng), 0u);
  EXPECT_TRUE(m == original);
}

TEST(WeightFlips, FullProbabilityFlipsEverything) {
  Rng rng(2);
  BitMatrix m = BitMatrix::random(8, 32, rng);
  const BitMatrix original = m;
  EXPECT_EQ(inject_weight_flips(m, 1.0, rng), 8u * 32u);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 32; ++c)
      EXPECT_NE(m.get(r, c), original.get(r, c));
}

TEST(WeightFlips, RateMatchesProbability) {
  Rng rng(3);
  BitMatrix m(64, 256);
  const std::size_t flipped = inject_weight_flips(m, 0.1, rng);
  const double rate =
      static_cast<double>(flipped) / static_cast<double>(64 * 256);
  EXPECT_NEAR(rate, 0.1, 0.02);
  EXPECT_EQ(m.popcount(), flipped);  // started all-zero
}

TEST(Adc, FullPrecisionIsExact) {
  Rng rng(4);
  // 8 bits cover full scale 100 with step < 0.5 -> every count maps to
  // itself.
  const AdcModel adc(8);
  for (std::uint32_t v = 0; v <= 100; v += 7)
    EXPECT_EQ(adc.read(v, 100, rng), v);
}

TEST(Adc, OneBitCollapsesToExtremes) {
  Rng rng(5);
  const AdcModel adc(1);
  EXPECT_EQ(adc.read(10.0, 100, rng), 0u);
  EXPECT_EQ(adc.read(90.0, 100, rng), 100u);
}

TEST(Adc, QuantizationIsMonotone) {
  Rng rng(6);
  const AdcModel adc(3);
  std::uint32_t prev = 0;
  for (std::uint32_t v = 0; v <= 128; ++v) {
    const std::uint32_t q = adc.read(v, 128, rng);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Adc, ClampsOutOfRange) {
  Rng rng(7);
  const AdcModel adc(6);
  EXPECT_EQ(adc.read(-5.0, 64, rng), 0u);
  EXPECT_EQ(adc.read(900.0, 64, rng), 64u);
}

TEST(Adc, NoiseIsZeroMeanish) {
  Rng rng(8);
  const AdcModel adc(10, /*noise_sigma=*/2.0);
  double acc = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) acc += adc.read(50.0, 100, rng);
  EXPECT_NEAR(acc / n, 50.0, 0.5);
}

TEST(Adc, TransferFunctionTableMidTread) {
  // Pins the documented mid-tread transfer function at bits in {1, 4, 8}:
  // codes = round(value / step) over [0, full_scale] with
  // step = full_scale / (2^bits - 1), reconstruction at code * step.
  Rng rng(40);
  struct Row {
    unsigned bits;
    std::uint32_t full_scale;
    double in;
    std::uint32_t expected;
  };
  const Row rows[] = {
      // 1 bit over [0, 100]: one step of 100; threshold at 50.
      {1, 100, 0.0, 0},
      {1, 100, 49.9, 0},
      {1, 100, 50.1, 100},
      {1, 100, 100.0, 100},
      // 4 bits over [0, 90]: step = 6; thresholds at odd multiples of 3.
      {4, 90, 0.0, 0},
      {4, 90, 2.9, 0},
      {4, 90, 3.1, 6},
      {4, 90, 44.9, 42},
      {4, 90, 45.1, 48},
      {4, 90, 90.0, 90},
      // 8 bits over [0, 128]: step = 128/255 < 1; every count is a level.
      {8, 128, 0.0, 0},
      {8, 128, 1.0, 1},
      {8, 128, 64.0, 64},
      {8, 128, 127.0, 127},
      {8, 128, 128.0, 128},
  };
  for (const auto& row : rows) {
    const AdcModel adc(row.bits);
    EXPECT_EQ(adc.read(row.in, row.full_scale, rng), row.expected)
        << "bits=" << row.bits << " in=" << row.in;
  }
}

TEST(Adc, ReadRangeTableAgreesWithReadTransferFunction) {
  // read_range over [0, full_scale] must implement the same mid-tread
  // transfer function as read (up to the count rounding read applies).
  Rng rng(41);
  for (const unsigned bits : {1u, 4u, 8u}) {
    const AdcModel adc(bits);
    for (const double v : {0.0, 7.3, 31.0, 44.9, 45.1, 63.5, 90.0}) {
      const double ranged = adc.read_range(v, 0.0, 90.0, rng);
      EXPECT_EQ(static_cast<std::uint32_t>(std::lround(ranged)),
                adc.read(v, 90, rng))
          << "bits=" << bits << " v=" << v;
    }
    // And a shifted window: levels are lo + code * step.
    const double lo = 10.0;
    const double hi = 10.0 + 90.0;
    const double step = 90.0 / static_cast<double>((1u << bits) - 1);
    for (const double v : {12.0, 37.0, 55.0, 99.0}) {
      const double out = adc.read_range(v, lo, hi, rng);
      const double code = std::round((v - lo) / step);
      EXPECT_DOUBLE_EQ(out, lo + code * step) << "bits=" << bits;
    }
  }
}

TEST(Adc, ReadColumnsAppliesToAll) {
  Rng rng(9);
  const AdcModel adc(2);  // 4 levels over [0, 90]: 0, 30, 60, 90
  std::vector<std::uint32_t> sums = {0, 29, 31, 89};
  adc.read_columns(sums, 90, rng);
  EXPECT_EQ(sums[0], 0u);
  EXPECT_EQ(sums[1], 30u);
  EXPECT_EQ(sums[2], 30u);
  EXPECT_EQ(sums[3], 90u);
}

TEST(WeightFlips, DeterministicGivenSeedAndIndependentOfHistory) {
  // The geometric-skip sampler must be a pure function of the Rng state.
  Rng a(77), b(77);
  BitMatrix ma = BitMatrix::random(24, 100, a);
  BitMatrix mb = BitMatrix::random(24, 100, b);
  EXPECT_EQ(inject_weight_flips(ma, 0.03, a), inject_weight_flips(mb, 0.03, b));
  EXPECT_TRUE(ma == mb);
}

TEST(WeightFlips, FullProbabilityPreservesPaddingInvariant) {
  // cols = 100 leaves 28 padding bits in the row tail; the word-wise
  // complement must not touch them (popcount would over-count otherwise).
  Rng rng(78);
  BitMatrix m = BitMatrix::random(8, 100, rng);
  const std::size_t ones = m.popcount();
  EXPECT_EQ(inject_weight_flips(m, 1.0, rng), 8u * 100u);
  EXPECT_EQ(m.popcount(), 8u * 100u - ones);
}

TEST(WeightFlips, GeometricSkipRateMatchesAcrossProbabilities) {
  for (const double p : {0.001, 0.02, 0.3, 0.8}) {
    Rng rng(79);
    BitMatrix m(128, 256);
    const auto n = static_cast<double>(128 * 256);
    const double rate = static_cast<double>(inject_weight_flips(m, p, rng)) / n;
    // 5-sigma band of the binomial rate.
    const double sigma = std::sqrt(p * (1.0 - p) / n);
    EXPECT_NEAR(rate, p, 5.0 * sigma + 1e-9) << "p=" << p;
    EXPECT_EQ(m.popcount(), static_cast<std::size_t>(rate * n));
  }
}

TEST(Adc, BatchReadMatchesPerQueryStreamAndIsChunkInvariant) {
  // read_columns_batch must equal per-query read_columns seeded with
  // query_stream(seed, q) — and therefore be invariant to how a sweep is
  // split into batches, as long as callers keep global query indices.
  Rng rng(42);
  const std::size_t queries = 6, cols = 24;
  std::vector<std::uint32_t> base(queries * cols);
  for (auto& s : base) s = static_cast<std::uint32_t>(rng.uniform_index(100));
  std::vector<std::uint32_t> full_scales(queries);
  for (auto& f : full_scales)
    f = 100u + static_cast<std::uint32_t>(rng.uniform_index(30));

  const AdcModel adc(4, /*noise_sigma=*/2.0);
  const std::uint64_t seed = 0xCAFE;
  auto batch = base;
  adc.read_columns_batch(batch, queries, full_scales, seed);

  for (std::size_t q = 0; q < queries; ++q) {
    std::vector<std::uint32_t> single(base.begin() + q * cols,
                                      base.begin() + (q + 1) * cols);
    Rng qrng(AdcModel::query_stream(seed, q));
    adc.read_columns(single, full_scales[q], qrng);
    for (std::size_t c = 0; c < cols; ++c)
      ASSERT_EQ(batch[q * cols + c], single[c]) << "q=" << q << " c=" << c;
  }

  // Same seed, same input => identical output (reproducibility).
  auto again = base;
  adc.read_columns_batch(again, queries, full_scales, seed);
  EXPECT_EQ(again, batch);
}

TEST(Adc, RangeBatchMatchesPerQueryStream) {
  Rng rng(43);
  const std::size_t queries = 5, cols = 16;
  std::vector<std::uint32_t> base(queries * cols);
  for (auto& s : base)
    s = 20u + static_cast<std::uint32_t>(rng.uniform_index(60));
  const AdcModel adc(3, /*noise_sigma=*/1.0);
  const std::uint64_t seed = 0xBEEF;
  auto batch = base;
  adc.read_range_batch(batch, queries, 20.0, 80.0, seed);
  for (std::size_t q = 0; q < queries; ++q) {
    Rng qrng(AdcModel::query_stream(seed, q));
    for (std::size_t c = 0; c < cols; ++c) {
      const auto expected = static_cast<std::uint32_t>(std::lround(
          adc.read_range(static_cast<double>(base[q * cols + c]), 20.0, 80.0,
                         qrng)));
      ASSERT_EQ(batch[q * cols + c], expected) << "q=" << q << " c=" << c;
    }
  }
}

class NoisySearchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Same seed => same class prototypes; the two draws share the mixture
    // (clustered_encoded derives prototypes from the seed before sampling).
    train_ = testing::clustered_encoded(40, 512, 4, 2, 25, /*seed=*/3);
    test_ = testing::clustered_encoded(25, 512, 4, 2, 25, /*seed=*/3);
    core::MemhdConfig cfg;
    cfg.dim = 512;
    cfg.columns = 8;
    cfg.kmeans_max_iterations = 10;
    am_ = core::initialize_clustering(train_, cfg, nullptr);
  }

  hdc::EncodedDataset train_, test_;
  core::MultiCentroidAM am_{2, 1, 2};
};

TEST_F(NoisySearchFixture, NoNoiseMatchesCleanEvaluation) {
  RobustnessConfig cfg;
  cfg.trials = 1;
  const auto result = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_DOUBLE_EQ(result.mean_accuracy, evaluate_binary(am_, test_));
  EXPECT_EQ(result.flipped_cells, 0u);
}

TEST_F(NoisySearchFixture, GracefulDegradationUnderWeightFlips) {
  // The HDC robustness property: 2% corrupted cells must cost little;
  // 40% corruption must hurt a lot more.
  const double clean = evaluate_binary(am_, test_);

  RobustnessConfig light;
  light.weight_flip_probability = 0.02;
  light.trials = 3;
  const auto l = evaluate_noisy_search(am_, test_, light);
  EXPECT_GT(l.mean_accuracy, clean - 0.10);

  RobustnessConfig heavy;
  heavy.weight_flip_probability = 0.4;
  heavy.trials = 3;
  const auto h = evaluate_noisy_search(am_, test_, heavy);
  EXPECT_LT(h.mean_accuracy, l.mean_accuracy + 1e-9);
}

TEST_F(NoisySearchFixture, ModerateAdcPrecisionSuffices) {
  const double clean = evaluate_binary(am_, test_);
  RobustnessConfig cfg;
  cfg.adc_bits = 6;
  cfg.trials = 1;
  const auto result = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_GT(result.mean_accuracy, clean - 0.10);
}

TEST_F(NoisySearchFixture, UncalibratedOneBitAdcDestroysRanking) {
  // Without range calibration, a 1-bit ADC thresholds at half the query
  // popcount — far above every score — so every column reads 0 and the
  // search collapses to a random tie.
  RobustnessConfig cfg;
  cfg.adc_bits = 1;
  cfg.adc_calibrated = false;
  cfg.trials = 1;
  const auto coarse = evaluate_noisy_search(am_, test_, cfg);
  cfg.adc_bits = 8;
  const auto fine = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_LT(coarse.mean_accuracy, fine.mean_accuracy);
}

TEST_F(NoisySearchFixture, CalibratedAdcNeverWorseThanUncalibrated) {
  // Calibrating the ADC window to the observed score range is what makes
  // coarse ADCs usable at all.
  for (const unsigned bits : {1u, 2u, 3u, 4u}) {
    RobustnessConfig cal;
    cal.adc_bits = bits;
    cal.trials = 2;
    const auto with = evaluate_noisy_search(am_, test_, cal);
    cal.adc_calibrated = false;
    const auto without = evaluate_noisy_search(am_, test_, cal);
    EXPECT_GE(with.mean_accuracy + 0.05, without.mean_accuracy)
        << "bits=" << bits;
  }
}

TEST_F(NoisySearchFixture, MinMaxBracketMean) {
  RobustnessConfig cfg;
  cfg.weight_flip_probability = 0.1;
  cfg.trials = 4;
  const auto r = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_LE(r.min_accuracy, r.mean_accuracy + 1e-12);
  EXPECT_GE(r.max_accuracy, r.mean_accuracy - 1e-12);
}

class AdcBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdcBitsSweep, AccuracyNonDecreasingInBitsOnAverage) {
  // Weak monotonicity property across the sweep: >= the 1-bit floor.
  const auto train = testing::clustered_encoded(30, 256, 3, 2, 15);
  core::MemhdConfig mcfg;
  mcfg.dim = 256;
  mcfg.columns = 6;
  const auto am = core::initialize_clustering(train, mcfg, nullptr);

  RobustnessConfig one_bit;
  one_bit.adc_bits = 1;
  one_bit.trials = 1;
  const double floor =
      evaluate_noisy_search(am, train, one_bit).mean_accuracy;

  RobustnessConfig cfg;
  cfg.adc_bits = GetParam();
  cfg.trials = 1;
  EXPECT_GE(evaluate_noisy_search(am, train, cfg).mean_accuracy + 0.05,
            floor);
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBitsSweep, ::testing::Values(2u, 4u, 6u, 8u));

}  // namespace
}  // namespace memhd::imc
