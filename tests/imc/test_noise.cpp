#include "src/imc/noise.hpp"

#include <gtest/gtest.h>

#include "src/core/initializer.hpp"
#include "src/imc/robustness.hpp"
#include "test_util.hpp"

namespace memhd::imc {
namespace {

using common::BitMatrix;
using common::Rng;

TEST(WeightFlips, ZeroProbabilityIsIdentity) {
  Rng rng(1);
  BitMatrix m = BitMatrix::random(16, 64, rng);
  const BitMatrix original = m;
  EXPECT_EQ(inject_weight_flips(m, 0.0, rng), 0u);
  EXPECT_TRUE(m == original);
}

TEST(WeightFlips, FullProbabilityFlipsEverything) {
  Rng rng(2);
  BitMatrix m = BitMatrix::random(8, 32, rng);
  const BitMatrix original = m;
  EXPECT_EQ(inject_weight_flips(m, 1.0, rng), 8u * 32u);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 32; ++c)
      EXPECT_NE(m.get(r, c), original.get(r, c));
}

TEST(WeightFlips, RateMatchesProbability) {
  Rng rng(3);
  BitMatrix m(64, 256);
  const std::size_t flipped = inject_weight_flips(m, 0.1, rng);
  const double rate =
      static_cast<double>(flipped) / static_cast<double>(64 * 256);
  EXPECT_NEAR(rate, 0.1, 0.02);
  EXPECT_EQ(m.popcount(), flipped);  // started all-zero
}

TEST(Adc, FullPrecisionIsExact) {
  Rng rng(4);
  // 8 bits cover full scale 100 with step < 0.5 -> every count maps to
  // itself.
  const AdcModel adc(8);
  for (std::uint32_t v = 0; v <= 100; v += 7)
    EXPECT_EQ(adc.read(v, 100, rng), v);
}

TEST(Adc, OneBitCollapsesToExtremes) {
  Rng rng(5);
  const AdcModel adc(1);
  EXPECT_EQ(adc.read(10.0, 100, rng), 0u);
  EXPECT_EQ(adc.read(90.0, 100, rng), 100u);
}

TEST(Adc, QuantizationIsMonotone) {
  Rng rng(6);
  const AdcModel adc(3);
  std::uint32_t prev = 0;
  for (std::uint32_t v = 0; v <= 128; ++v) {
    const std::uint32_t q = adc.read(v, 128, rng);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Adc, ClampsOutOfRange) {
  Rng rng(7);
  const AdcModel adc(6);
  EXPECT_EQ(adc.read(-5.0, 64, rng), 0u);
  EXPECT_EQ(adc.read(900.0, 64, rng), 64u);
}

TEST(Adc, NoiseIsZeroMeanish) {
  Rng rng(8);
  const AdcModel adc(10, /*noise_sigma=*/2.0);
  double acc = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) acc += adc.read(50.0, 100, rng);
  EXPECT_NEAR(acc / n, 50.0, 0.5);
}

TEST(Adc, ReadColumnsAppliesToAll) {
  Rng rng(9);
  const AdcModel adc(2);  // 4 levels over [0, 90]: 0, 30, 60, 90
  std::vector<std::uint32_t> sums = {0, 29, 31, 89};
  adc.read_columns(sums, 90, rng);
  EXPECT_EQ(sums[0], 0u);
  EXPECT_EQ(sums[1], 30u);
  EXPECT_EQ(sums[2], 30u);
  EXPECT_EQ(sums[3], 90u);
}

class NoisySearchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Same seed => same class prototypes; the two draws share the mixture
    // (clustered_encoded derives prototypes from the seed before sampling).
    train_ = testing::clustered_encoded(40, 512, 4, 2, 25, /*seed=*/3);
    test_ = testing::clustered_encoded(25, 512, 4, 2, 25, /*seed=*/3);
    core::MemhdConfig cfg;
    cfg.dim = 512;
    cfg.columns = 8;
    cfg.kmeans_max_iterations = 10;
    am_ = core::initialize_clustering(train_, cfg, nullptr);
  }

  hdc::EncodedDataset train_, test_;
  core::MultiCentroidAM am_{2, 1, 2};
};

TEST_F(NoisySearchFixture, NoNoiseMatchesCleanEvaluation) {
  RobustnessConfig cfg;
  cfg.trials = 1;
  const auto result = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_DOUBLE_EQ(result.mean_accuracy, evaluate_binary(am_, test_));
  EXPECT_EQ(result.flipped_cells, 0u);
}

TEST_F(NoisySearchFixture, GracefulDegradationUnderWeightFlips) {
  // The HDC robustness property: 2% corrupted cells must cost little;
  // 40% corruption must hurt a lot more.
  const double clean = evaluate_binary(am_, test_);

  RobustnessConfig light;
  light.weight_flip_probability = 0.02;
  light.trials = 3;
  const auto l = evaluate_noisy_search(am_, test_, light);
  EXPECT_GT(l.mean_accuracy, clean - 0.10);

  RobustnessConfig heavy;
  heavy.weight_flip_probability = 0.4;
  heavy.trials = 3;
  const auto h = evaluate_noisy_search(am_, test_, heavy);
  EXPECT_LT(h.mean_accuracy, l.mean_accuracy + 1e-9);
}

TEST_F(NoisySearchFixture, ModerateAdcPrecisionSuffices) {
  const double clean = evaluate_binary(am_, test_);
  RobustnessConfig cfg;
  cfg.adc_bits = 6;
  cfg.trials = 1;
  const auto result = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_GT(result.mean_accuracy, clean - 0.10);
}

TEST_F(NoisySearchFixture, UncalibratedOneBitAdcDestroysRanking) {
  // Without range calibration, a 1-bit ADC thresholds at half the query
  // popcount — far above every score — so every column reads 0 and the
  // search collapses to a random tie.
  RobustnessConfig cfg;
  cfg.adc_bits = 1;
  cfg.adc_calibrated = false;
  cfg.trials = 1;
  const auto coarse = evaluate_noisy_search(am_, test_, cfg);
  cfg.adc_bits = 8;
  const auto fine = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_LT(coarse.mean_accuracy, fine.mean_accuracy);
}

TEST_F(NoisySearchFixture, CalibratedAdcNeverWorseThanUncalibrated) {
  // Calibrating the ADC window to the observed score range is what makes
  // coarse ADCs usable at all.
  for (const unsigned bits : {1u, 2u, 3u, 4u}) {
    RobustnessConfig cal;
    cal.adc_bits = bits;
    cal.trials = 2;
    const auto with = evaluate_noisy_search(am_, test_, cal);
    cal.adc_calibrated = false;
    const auto without = evaluate_noisy_search(am_, test_, cal);
    EXPECT_GE(with.mean_accuracy + 0.05, without.mean_accuracy)
        << "bits=" << bits;
  }
}

TEST_F(NoisySearchFixture, MinMaxBracketMean) {
  RobustnessConfig cfg;
  cfg.weight_flip_probability = 0.1;
  cfg.trials = 4;
  const auto r = evaluate_noisy_search(am_, test_, cfg);
  EXPECT_LE(r.min_accuracy, r.mean_accuracy + 1e-12);
  EXPECT_GE(r.max_accuracy, r.mean_accuracy - 1e-12);
}

class AdcBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdcBitsSweep, AccuracyNonDecreasingInBitsOnAverage) {
  // Weak monotonicity property across the sweep: >= the 1-bit floor.
  const auto train = testing::clustered_encoded(30, 256, 3, 2, 15);
  core::MemhdConfig mcfg;
  mcfg.dim = 256;
  mcfg.columns = 6;
  const auto am = core::initialize_clustering(train, mcfg, nullptr);

  RobustnessConfig one_bit;
  one_bit.adc_bits = 1;
  one_bit.trials = 1;
  const double floor =
      evaluate_noisy_search(am, train, one_bit).mean_accuracy;

  RobustnessConfig cfg;
  cfg.adc_bits = GetParam();
  cfg.trials = 1;
  EXPECT_GE(evaluate_noisy_search(am, train, cfg).mean_accuracy + 0.05,
            floor);
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBitsSweep, ::testing::Values(2u, 4u, 6u, 8u));

}  // namespace
}  // namespace memhd::imc
