// The partitioning baseline's defining property: a pure layout transform.
// Scores and predictions must be bit-identical to the dense dot search for
// every partition count; only the array/cycle accounting changes.
#include "src/imc/partitioned_search.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/imc/mapping.hpp"

namespace memhd::imc {
namespace {

using common::BitMatrix;
using common::BitVector;
using common::Rng;

std::vector<std::uint32_t> dense_scores(const BitMatrix& am,
                                        const BitVector& query) {
  std::vector<std::uint32_t> out;
  am.mvm(query, out);
  return out;
}

TEST(PartitionedSearch, OnePartitionEqualsDense) {
  Rng rng(1);
  const BitMatrix am = BitMatrix::random(10, 1024, rng);
  PartitionedAm part(am, 1, ArrayGeometry{128, 128});
  const auto q = BitVector::random(1024, rng);
  EXPECT_EQ(part.scores(q), dense_scores(am, q));
}

class PartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionSweep, ScoresIdenticalToDenseSearch) {
  const std::size_t p = GetParam();
  Rng rng(10 + p);
  const BitMatrix am = BitMatrix::random(10, 1024, rng);
  PartitionedAm part(am, p, ArrayGeometry{128, 128});
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = BitVector::random(1024, rng);
    ASSERT_EQ(part.scores(q), dense_scores(am, q)) << "P=" << p;
  }
}

TEST_P(PartitionSweep, PredictMatchesArgmax) {
  const std::size_t p = GetParam();
  Rng rng(20 + p);
  const BitMatrix am = BitMatrix::random(26, 512, rng);
  PartitionedAm part(am, p, ArrayGeometry{128, 128});
  for (int trial = 0; trial < 5; ++trial) {
    const auto q = BitVector::random(512, rng);
    const auto dense = dense_scores(am, q);
    ASSERT_EQ(part.predict(q), common::argmax_u32(dense));
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweep,
                         ::testing::Values(1u, 2u, 4u, 5u, 8u, 10u));

TEST(PartitionedSearch, NonDividingPartitionCount) {
  // P = 3 does not divide D = 1000: the tail partition is short; results
  // must still match the dense search exactly.
  Rng rng(3);
  const BitMatrix am = BitMatrix::random(7, 1000, rng);
  PartitionedAm part(am, 3, ArrayGeometry{128, 128});
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = BitVector::random(1000, rng);
    ASSERT_EQ(part.scores(q), dense_scores(am, q));
  }
}

TEST(PartitionedSearch, BatchScoresMatchPerQueryAndDense) {
  // The batch path must preserve the partitioned-search equivalence
  // invariant: scores_batch == per-query scores() == dense dot search,
  // including non-dividing P (short tail partition) and odd batch sizes.
  Rng rng(6);
  const BitMatrix am = BitMatrix::random(9, 1000, rng);
  std::vector<BitVector> queries;
  for (int i = 0; i < 23; ++i) queries.push_back(BitVector::random(1000, rng));

  for (const std::size_t p : {1UL, 3UL, 7UL}) {
    PartitionedAm batch_am(am, p, ArrayGeometry{128, 128});
    PartitionedAm single_am(am, p, ArrayGeometry{128, 128});

    const auto batch = batch_am.scores_batch(queries);
    ASSERT_EQ(batch.size(), queries.size() * am.rows());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto single = single_am.scores(queries[q]);
      const auto dense = dense_scores(am, queries[q]);
      for (std::size_t c = 0; c < am.rows(); ++c) {
        ASSERT_EQ(batch[q * am.rows() + c], single[c])
            << "P=" << p << " q=" << q;
        ASSERT_EQ(batch[q * am.rows() + c], dense[c])
            << "P=" << p << " q=" << q;
      }
    }
    // Batch accounting equals the sum of the per-query passes.
    EXPECT_EQ(batch_am.activations(), single_am.activations()) << "P=" << p;
  }
}

TEST(PartitionedSearch, BatchPredictMatchesPerQueryPredict) {
  Rng rng(7);
  const BitMatrix am = BitMatrix::random(12, 512, rng);
  std::vector<BitVector> queries;
  for (int i = 0; i < 11; ++i) queries.push_back(BitVector::random(512, rng));

  PartitionedAm batch_am(am, 4, ArrayGeometry{128, 128});
  PartitionedAm single_am(am, 4, ArrayGeometry{128, 128});
  const auto batch = batch_am.predict_batch(queries);
  for (std::size_t q = 0; q < queries.size(); ++q)
    ASSERT_EQ(batch[q], single_am.predict(queries[q])) << "q=" << q;
}

TEST(PartitionedSearch, ArrayCountMatchesMappingEngine) {
  // The functional deployment must occupy exactly the arrays the
  // architectural mapping predicts (MNIST P=10 case: 8 arrays).
  Rng rng(4);
  const BitMatrix am = BitMatrix::random(10, 10240, rng);
  PartitionedAm part(am, 10, ArrayGeometry{128, 128});
  const auto cost = map_partitioned(10240, 10, 10, ArrayGeometry{128, 128});
  EXPECT_EQ(part.num_arrays(), cost.arrays);
  EXPECT_EQ(part.num_arrays(), 8u);
}

TEST(PartitionedSearch, ActivationsScaleWithPartitions) {
  // Each query costs P passes over the row tiles whose columns intersect
  // the partition group — the cycle pathology of Fig. 1-(b).
  Rng rng(5);
  const BitMatrix am = BitMatrix::random(10, 1024, rng);

  PartitionedAm p1(am, 1, ArrayGeometry{128, 128});
  const auto q = BitVector::random(1024, rng);
  p1.scores(q);
  const std::size_t base = p1.activations();

  PartitionedAm p8(am, 8, ArrayGeometry{128, 128});
  p8.scores(q);
  EXPECT_GE(p8.activations(), base);
  EXPECT_LE(p8.num_arrays(), p1.num_arrays());
}

}  // namespace
}  // namespace memhd::imc
