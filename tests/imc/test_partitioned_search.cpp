// The partitioning baseline's defining property: a pure layout transform.
// Scores and predictions must be bit-identical to the dense dot search for
// every partition count; only the array/cycle accounting changes.
#include "src/imc/partitioned_search.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/imc/mapping.hpp"
#include "src/imc/noise.hpp"

namespace memhd::imc {
namespace {

using common::BitMatrix;
using common::BitVector;
using common::Rng;

std::vector<std::uint32_t> dense_scores(const BitMatrix& am,
                                        const BitVector& query) {
  std::vector<std::uint32_t> out;
  am.mvm(query, out);
  return out;
}

TEST(PartitionedSearch, OnePartitionEqualsDense) {
  Rng rng(1);
  const BitMatrix am = BitMatrix::random(10, 1024, rng);
  PartitionedAm part(am, 1, ArrayGeometry{128, 128});
  const auto q = BitVector::random(1024, rng);
  EXPECT_EQ(part.scores(q), dense_scores(am, q));
}

class PartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionSweep, ScoresIdenticalToDenseSearch) {
  const std::size_t p = GetParam();
  Rng rng(10 + p);
  const BitMatrix am = BitMatrix::random(10, 1024, rng);
  PartitionedAm part(am, p, ArrayGeometry{128, 128});
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = BitVector::random(1024, rng);
    ASSERT_EQ(part.scores(q), dense_scores(am, q)) << "P=" << p;
  }
}

TEST_P(PartitionSweep, PredictMatchesArgmax) {
  const std::size_t p = GetParam();
  Rng rng(20 + p);
  const BitMatrix am = BitMatrix::random(26, 512, rng);
  PartitionedAm part(am, p, ArrayGeometry{128, 128});
  for (int trial = 0; trial < 5; ++trial) {
    const auto q = BitVector::random(512, rng);
    const auto dense = dense_scores(am, q);
    ASSERT_EQ(part.predict(q), common::argmax_u32(dense));
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweep,
                         ::testing::Values(1u, 2u, 4u, 5u, 8u, 10u));

TEST(PartitionedSearch, NonDividingPartitionCount) {
  // P = 3 does not divide D = 1000: the tail partition is short; results
  // must still match the dense search exactly.
  Rng rng(3);
  const BitMatrix am = BitMatrix::random(7, 1000, rng);
  PartitionedAm part(am, 3, ArrayGeometry{128, 128});
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = BitVector::random(1000, rng);
    ASSERT_EQ(part.scores(q), dense_scores(am, q));
  }
}

TEST(PartitionedSearch, BatchScoresMatchPerQueryAndDense) {
  // The batch path must preserve the partitioned-search equivalence
  // invariant: scores_batch == per-query scores() == dense dot search,
  // including non-dividing P (short tail partition) and odd batch sizes.
  Rng rng(6);
  const BitMatrix am = BitMatrix::random(9, 1000, rng);
  std::vector<BitVector> queries;
  for (int i = 0; i < 23; ++i) queries.push_back(BitVector::random(1000, rng));

  for (const std::size_t p : {1UL, 3UL, 7UL}) {
    PartitionedAm batch_am(am, p, ArrayGeometry{128, 128});
    PartitionedAm single_am(am, p, ArrayGeometry{128, 128});

    const auto batch = batch_am.scores_batch(queries);
    ASSERT_EQ(batch.size(), queries.size() * am.rows());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto single = single_am.scores(queries[q]);
      const auto dense = dense_scores(am, queries[q]);
      for (std::size_t c = 0; c < am.rows(); ++c) {
        ASSERT_EQ(batch[q * am.rows() + c], single[c])
            << "P=" << p << " q=" << q;
        ASSERT_EQ(batch[q * am.rows() + c], dense[c])
            << "P=" << p << " q=" << q;
      }
    }
    // Batch accounting equals the sum of the per-query passes.
    EXPECT_EQ(batch_am.activations(), single_am.activations()) << "P=" << p;
  }
}

TEST(PartitionedSearch, BatchPredictMatchesPerQueryPredict) {
  Rng rng(7);
  const BitMatrix am = BitMatrix::random(12, 512, rng);
  std::vector<BitVector> queries;
  for (int i = 0; i < 11; ++i) queries.push_back(BitVector::random(512, rng));

  PartitionedAm batch_am(am, 4, ArrayGeometry{128, 128});
  PartitionedAm single_am(am, 4, ArrayGeometry{128, 128});
  const auto batch = batch_am.predict_batch(queries);
  for (std::size_t q = 0; q < queries.size(); ++q)
    ASSERT_EQ(batch[q], single_am.predict(queries[q])) << "q=" << q;
}

TEST(PartitionedSearch, ArrayCountMatchesMappingEngine) {
  // The functional deployment must occupy exactly the arrays the
  // architectural mapping predicts (MNIST P=10 case: 8 arrays).
  Rng rng(4);
  const BitMatrix am = BitMatrix::random(10, 10240, rng);
  PartitionedAm part(am, 10, ArrayGeometry{128, 128});
  const auto cost = map_partitioned(10240, 10, 10, ArrayGeometry{128, 128});
  EXPECT_EQ(part.num_arrays(), cost.arrays);
  EXPECT_EQ(part.num_arrays(), 8u);
}

// Property sweep for the wordline-parallel batch path: (dim, classes,
// partitions, geometry) combinations chosen to hit partitions that do not
// divide dim, segments that straddle word boundaries, and tile-boundary
// geometries (both dividing and non-dividing row/column tile splits).
class BatchShapeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, ArrayGeometry>> {};

TEST_P(BatchShapeSweep, BatchBitIdenticalToScalarAcrossOddShapes) {
  const auto [dim, classes, partitions, geometry] = GetParam();
  Rng rng(100 + dim + partitions);
  const BitMatrix am = BitMatrix::random(classes, dim, rng);
  std::vector<BitVector> queries;
  for (int i = 0; i < 17; ++i) queries.push_back(BitVector::random(dim, rng));

  PartitionedAm batch_am(am, partitions, geometry);
  PartitionedAm scalar_am(am, partitions, geometry);
  const auto batch = batch_am.scores_batch(queries);
  ASSERT_EQ(batch.size(), queries.size() * classes);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto single = scalar_am.scores(queries[q]);
    for (std::size_t c = 0; c < classes; ++c)
      ASSERT_EQ(batch[q * classes + c], single[c])
          << "D=" << dim << " P=" << partitions << " g=" << geometry.rows
          << "x" << geometry.cols << " q=" << q;
  }
  // The block path bumps each driven array by the batch size; the scalar
  // path increments per query. The totals must agree exactly.
  EXPECT_EQ(batch_am.activations(), scalar_am.activations());
}

TEST_P(BatchShapeSweep, NoisyBatchReproducesPerQuerySeededScalarReads) {
  // Under readout noise the contract is stream-level: digitizing the batch
  // score matrix with a per-query-seeded AdcModel stream must equal
  // digitizing each per-query score vector with that query's stream.
  const auto [dim, classes, partitions, geometry] = GetParam();
  Rng rng(200 + dim + partitions);
  const BitMatrix am = BitMatrix::random(classes, dim, rng);
  std::vector<BitVector> queries;
  for (int i = 0; i < 9; ++i) queries.push_back(BitVector::random(dim, rng));

  PartitionedAm batch_am(am, partitions, geometry);
  PartitionedAm scalar_am(am, partitions, geometry);
  const AdcModel adc(4, /*noise_sigma=*/1.5);
  const std::uint64_t stream_seed = 0xF00D;

  auto batch = batch_am.scores_batch(queries);
  std::vector<std::uint32_t> full_scales(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    full_scales[q] = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, queries[q].popcount()));
  adc.read_columns_batch(batch, queries.size(), full_scales, stream_seed);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto single = scalar_am.scores(queries[q]);
    common::Rng qrng(AdcModel::query_stream(stream_seed, q));
    adc.read_columns(single, full_scales[q], qrng);
    for (std::size_t c = 0; c < classes; ++c)
      ASSERT_EQ(batch[q * classes + c], single[c])
          << "D=" << dim << " P=" << partitions << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, BatchShapeSweep,
    ::testing::Values(
        // P divides D, geometry divides everything (the clean case).
        std::make_tuple(1024u, 10u, 4u, ArrayGeometry{128, 128}),
        // P does not divide D: short tail partition.
        std::make_tuple(1000u, 9u, 3u, ArrayGeometry{128, 128}),
        std::make_tuple(1000u, 9u, 7u, ArrayGeometry{128, 128}),
        // Tiny arrays: many row/column tiles, tile-boundary accumulation.
        std::make_tuple(260u, 5u, 2u, ArrayGeometry{16, 16}),
        std::make_tuple(260u, 5u, 3u, ArrayGeometry{32, 8}),
        std::make_tuple(130u, 26u, 5u, ArrayGeometry{8, 32}),
        // Word-straddling geometry rows (65 wordlines = one word + 1 bit).
        std::make_tuple(512u, 12u, 4u, ArrayGeometry{65, 33})));

TEST(PartitionedSearch, ActivationsScaleWithPartitions) {
  // Each query costs P passes over the row tiles whose columns intersect
  // the partition group — the cycle pathology of Fig. 1-(b).
  Rng rng(5);
  const BitMatrix am = BitMatrix::random(10, 1024, rng);

  PartitionedAm p1(am, 1, ArrayGeometry{128, 128});
  const auto q = BitVector::random(1024, rng);
  p1.scores(q);
  const std::size_t base = p1.activations();

  PartitionedAm p8(am, 8, ArrayGeometry{128, 128});
  p8.scores(q);
  EXPECT_GE(p8.activations(), base);
  EXPECT_LE(p8.num_arrays(), p1.num_arrays());
}

}  // namespace
}  // namespace memhd::imc
