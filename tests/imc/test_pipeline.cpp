// The §III-D equivalence property: inference executed tile-by-tile on the
// functional IMC arrays must match the software model bit-exactly.
// Features are 8-bit quantized (multiples of 1/256, as a DAC would deliver)
// so every float partial sum is exactly representable — see pipeline.hpp.
#include "src/imc/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/core/initializer.hpp"
#include "test_util.hpp"

namespace memhd::imc {
namespace {

using common::BitVector;
using common::Rng;

/// Feature vector with 8-bit quantized entries.
std::vector<float> dac_features(std::size_t f, Rng& rng) {
  std::vector<float> x(f);
  for (auto& v : x)
    v = static_cast<float>(rng.uniform_index(256)) / 256.0f;
  return x;
}

struct Deployed {
  hdc::ProjectionEncoder encoder;
  core::MultiCentroidAM am;
};

Deployed make_deployed(std::size_t f, std::size_t dim, std::size_t columns,
                       std::size_t classes, std::uint64_t seed) {
  hdc::ProjectionEncoderConfig ec;
  ec.num_features = f;
  ec.dim = dim;
  ec.seed = seed;
  hdc::ProjectionEncoder encoder(ec);

  core::MultiCentroidAM am(classes, dim, columns);
  Rng rng(seed ^ 0xA11);
  std::vector<float> bip;
  for (std::size_t col = 0; col < columns; ++col) {
    const auto proto = BitVector::random(dim, rng);
    bip.clear();
    proto.to_bipolar(bip);
    am.set_centroid(col, static_cast<data::Label>(col % classes), bip);
  }
  am.binarize();
  return Deployed{std::move(encoder), std::move(am)};
}

TEST(TiledMatrix, BinaryMvmMatchesLogicalMatrix) {
  Rng rng(1);
  const auto logical = common::BitMatrix::random(300, 150, rng);
  TiledMatrix tiled(logical, ArrayGeometry{128, 128});
  EXPECT_EQ(tiled.row_tiles(), 3u);
  EXPECT_EQ(tiled.col_tiles(), 2u);
  EXPECT_EQ(tiled.num_arrays(), 6u);

  const auto input = BitVector::random(300, rng);
  const auto out = tiled.mvm_binary(input);
  ASSERT_EQ(out.size(), 150u);
  for (std::size_t c = 0; c < 150; ++c) {
    std::uint32_t naive = 0;
    for (std::size_t r = 0; r < 300; ++r)
      if (input.get(r) && logical.get(r, c)) ++naive;
    ASSERT_EQ(out[c], naive) << "col " << c;
  }
  // One full MVM = row_tiles * col_tiles array activations.
  EXPECT_EQ(tiled.activations(), 6u);
}

TEST(TiledMatrix, RealMvmMatchesNaive) {
  Rng rng(2);
  const auto logical = common::BitMatrix::random(100, 40, rng);
  TiledMatrix tiled(logical, ArrayGeometry{32, 32});
  const auto x = dac_features(100, rng);
  const auto out = tiled.mvm_real(x);
  for (std::size_t c = 0; c < 40; ++c) {
    float naive = 0.0f;
    for (std::size_t r = 0; r < 100; ++r)
      if (logical.get(r, c)) naive += x[r];
    ASSERT_NEAR(out[c], naive, 1e-5f);
  }
}

TEST(Pipeline, EncodeBitExactAgainstSoftware) {
  const auto d = make_deployed(100, 256, 16, 4, 33);
  InMemoryPipeline pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x = dac_features(100, rng);
    const auto hw = pipe.encode(x);
    const auto sw = d.encoder.encode(x);
    ASSERT_TRUE(hw == sw) << "trial " << trial;
  }
}

TEST(Pipeline, SearchBitExactAgainstSoftware) {
  const auto d = make_deployed(64, 512, 24, 6, 44);
  InMemoryPipeline pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const auto q = BitVector::random(512, rng);
    ASSERT_EQ(pipe.search(q), d.am.predict_binary(q)) << "trial " << trial;
  }
}

TEST(Pipeline, EndToEndPredictionEquivalence) {
  const auto d = make_deployed(100, 128, 12, 3, 55);
  InMemoryPipeline pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = dac_features(100, rng);
    ASSERT_EQ(pipe.predict(x), d.am.predict_binary(d.encoder.encode(x)));
  }
}

TEST(Pipeline, TrainedModelEquivalenceOnRealWorkload) {
  // Full path: synthetic data -> clustering init -> deployment on arrays.
  auto split = testing::tiny_multimodal(/*seed=*/3, 30, 10);
  // Quantize features to DAC precision for exact equivalence.
  for (auto* ds : {&split.train, &split.test})
    for (std::size_t i = 0; i < ds->size(); ++i)
      for (auto& v : ds->features().row(i))
        v = std::floor(v * 256.0f) / 256.0f;

  core::MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 8;
  cfg.epochs = 3;
  cfg.seed = 9;
  hdc::ProjectionEncoderConfig ec;
  ec.num_features = split.train.num_features();
  ec.dim = cfg.dim;
  ec.seed = 21;
  const hdc::ProjectionEncoder encoder(ec);
  const auto encoded = encoder.encode_dataset(split.train);
  auto am = core::initialize_clustering(encoded, cfg, nullptr);

  InMemoryPipeline pipe(encoder, am, ArrayGeometry{128, 128});
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    const auto sw = am.predict_binary(encoder.encode(split.test.sample(i)));
    ASSERT_EQ(pipe.predict(split.test.sample(i)), sw) << "sample " << i;
  }
}

TEST(Pipeline, StatsMatchMappingEngine) {
  // MEMHD MNIST config: EM 784x128 -> 7 arrays, AM 128x128 -> 1 array.
  const auto d = make_deployed(784, 128, 128, 10, 66);
  InMemoryPipeline pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  const auto s = pipe.stats();
  EXPECT_EQ(s.em_arrays, 7u);
  EXPECT_EQ(s.am_arrays, 1u);
  EXPECT_EQ(s.em_cycles_per_inference, 7u);
  EXPECT_EQ(s.am_cycles_per_inference, 1u);
  EXPECT_EQ(s.total_cycles(), 8u);
  EXPECT_DOUBLE_EQ(s.am_utilization, 1.0);

  const auto mapped = map_memhd_model(784, 128, 128, ArrayGeometry{128, 128});
  EXPECT_EQ(s.em_arrays, mapped.em_cost.arrays);
  EXPECT_EQ(s.am_arrays, mapped.am_cost.arrays);
}

TEST(Pipeline, ActivationCountsPerInference) {
  const auto d = make_deployed(784, 128, 128, 10, 77);
  InMemoryPipeline pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  Rng rng(8);
  pipe.reset_counters();
  const auto x = dac_features(784, rng);
  pipe.predict(x);
  // 7 EM tiles + 1 AM tile = 8 activations, matching Table II's per-query
  // cycle count.
  EXPECT_EQ(pipe.activations(), 8u);
  pipe.predict(x);
  EXPECT_EQ(pipe.activations(), 16u);
}

TEST(TiledMatrix, BatchMvmBitIdenticalToPerQuery) {
  // Wordline-parallel tile drive vs per-query mvm_binary, on a logical
  // shape that does not divide the geometry in either direction.
  Rng rng(20);
  const auto logical = common::BitMatrix::random(300, 150, rng);
  TiledMatrix batch_tiles(logical, ArrayGeometry{128, 128});
  TiledMatrix scalar_tiles(logical, ArrayGeometry{128, 128});
  std::vector<BitVector> inputs;
  for (int i = 0; i < 9; ++i) inputs.push_back(BitVector::random(300, rng));
  const auto out = batch_tiles.mvm_binary_batch(inputs);
  ASSERT_EQ(out.size(), inputs.size() * 150u);
  for (std::size_t q = 0; q < inputs.size(); ++q) {
    const auto single = scalar_tiles.mvm_binary(inputs[q]);
    for (std::size_t c = 0; c < 150; ++c)
      ASSERT_EQ(out[q * 150 + c], single[c]) << "q=" << q << " c=" << c;
  }
  EXPECT_EQ(batch_tiles.activations(), scalar_tiles.activations());
}

TEST(Pipeline, SearchBatchBitIdenticalToPerQuerySearch) {
  const auto d = make_deployed(64, 512, 24, 6, 99);
  InMemoryPipeline batch_pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  InMemoryPipeline scalar_pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  Rng rng(10);
  std::vector<BitVector> queries;
  for (int i = 0; i < 25; ++i) queries.push_back(BitVector::random(512, rng));
  const auto batch = batch_pipe.search_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    ASSERT_EQ(batch[q], scalar_pipe.search(queries[q])) << "q=" << q;
  EXPECT_EQ(batch_pipe.activations(), scalar_pipe.activations());
}

TEST(Pipeline, OneShotSearchProperty) {
  // The paper's headline: when D and C both fit one array, associative
  // search is a single activation.
  const auto d = make_deployed(64, 128, 128, 10, 88);
  InMemoryPipeline pipe(d.encoder, d.am, ArrayGeometry{128, 128});
  pipe.reset_counters();
  Rng rng(9);
  pipe.search(BitVector::random(128, rng));
  EXPECT_EQ(pipe.activations(), 1u);
}

}  // namespace
}  // namespace memhd::imc
