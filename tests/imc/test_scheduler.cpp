#include "src/imc/scheduler.hpp"

#include <gtest/gtest.h>

namespace memhd::imc {
namespace {

constexpr ArrayGeometry k128{128, 128};

TEST(Scheduler, SingleArrayReproducesTableIICycles) {
  // One physical array, no reprogram cost: makespan == Table II's cycle
  // column for every mapping.
  SchedulerConfig bank;
  bank.physical_arrays = 1;

  const auto basic = map_basic_model(784, 10240, 10, k128);
  EXPECT_EQ(schedule_inference(basic, bank).makespan_cycles, 640u);

  const auto memhd = map_memhd_model(784, 128, 128, k128);
  EXPECT_EQ(schedule_inference(memhd, bank).makespan_cycles, 8u);

  const auto isolet = map_memhd_model(617, 512, 128, k128);
  EXPECT_EQ(schedule_inference(isolet, bank).makespan_cycles, 24u);
}

TEST(Scheduler, FullBankReachesTwoStageIdeal) {
  // Enough arrays for every tile: one wave per stage.
  const auto basic = map_basic_model(784, 10240, 10, k128);
  SchedulerConfig bank;
  bank.physical_arrays = 1000;
  const auto s = schedule_inference(basic, bank);
  EXPECT_EQ(s.makespan_cycles, 2u);  // EM wave + AM wave
  EXPECT_EQ(s.reprograms_per_query, 0u);
}

TEST(Scheduler, MemhdFullBankIsTwoCycles) {
  const auto memhd = map_memhd_model(784, 128, 128, k128);
  SchedulerConfig bank;
  bank.physical_arrays = 8;
  const auto s = schedule_inference(memhd, bank);
  EXPECT_EQ(s.makespan_cycles, 2u);
  EXPECT_EQ(s.reprograms_per_query, 0u);
  // 8 tiles over 7-array peak stage: arrays_used = min(8, max(7,1)) = 7.
  EXPECT_EQ(s.arrays_used, 7u);
}

TEST(Scheduler, MakespanMonotoneInBankSize) {
  const auto model = map_basic_model(784, 10240, 10, k128);
  std::size_t prev = ~0ULL;
  for (const std::size_t n : {1u, 2u, 4u, 16u, 64u, 640u}) {
    SchedulerConfig bank;
    bank.physical_arrays = n;
    const auto s = schedule_inference(model, bank);
    EXPECT_LE(s.makespan_cycles, prev) << "n=" << n;
    prev = s.makespan_cycles;
  }
}

TEST(Scheduler, ReprogramOverheadCountsSwaps) {
  // MEMHD has 8 tiles; with a 4-array bank, 4 tiles must be swapped in.
  const auto memhd = map_memhd_model(784, 128, 128, k128);
  SchedulerConfig bank;
  bank.physical_arrays = 4;
  bank.reprogram_cycles = 10;
  const auto s = schedule_inference(memhd, bank);
  EXPECT_EQ(s.reprograms_per_query, 4u);
  EXPECT_EQ(s.reprogram_overhead_cycles, 40u);
  EXPECT_EQ(s.makespan_cycles, s.compute_cycles + 40u);
}

TEST(Scheduler, ZeroReprogramMatchesPaperAccounting) {
  // Paper-mode (reprogram free): compute cycles only, and the makespan at
  // n=1 equals em + am activations.
  const auto model = map_partitioned_model(784, 10240, 10, 10, k128);
  SchedulerConfig bank;
  bank.physical_arrays = 1;
  const auto s = schedule_inference(model, bank);
  EXPECT_EQ(s.reprogram_overhead_cycles, 0u);
  EXPECT_EQ(s.makespan_cycles,
            model.em_cost.activations + model.am_cost.activations);
}

TEST(Scheduler, BankUtilizationBounds) {
  const auto model = map_memhd_model(784, 128, 128, k128);
  for (const std::size_t n : {1u, 2u, 7u, 8u, 100u}) {
    SchedulerConfig bank;
    bank.physical_arrays = n;
    const auto s = schedule_inference(model, bank);
    EXPECT_GT(s.bank_utilization, 0.0) << "n=" << n;
    EXPECT_LE(s.bank_utilization, 1.0 + 1e-12) << "n=" << n;
  }
  // A single array is always 100% time-utilized with free reprogramming.
  SchedulerConfig one;
  one.physical_arrays = 1;
  EXPECT_DOUBLE_EQ(schedule_inference(model, one).bank_utilization, 1.0);
}

TEST(Scheduler, ThroughputInvertsLatency) {
  const auto model = map_memhd_model(784, 128, 128, k128);
  SchedulerConfig bank;
  bank.physical_arrays = 1;
  const auto s = schedule_inference(model, bank);
  // 8 cycles * 5 ns = 40 ns per query -> 25M queries/s.
  EXPECT_NEAR(throughput_qps(s, 5.0), 25e6, 1.0);
}

}  // namespace
}  // namespace memhd::imc
