// Cross-module integration tests: the paper's claims in miniature.
#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/basic_hdc.hpp"
#include "src/core/memory_model.hpp"
#include "src/core/model.hpp"
#include "src/imc/pipeline.hpp"
#include "test_util.hpp"

namespace memhd {
namespace {

TEST(EndToEnd, MultiCentroidBeatsSingleCentroidAtEqualAmMemory) {
  // The paper's central claim, miniaturized: on multi-modal data, MEMHD
  // with D=128 and C=16 centroids must beat a single-centroid BasicHDC
  // whose AM uses MORE memory via a larger dimension.
  //   MEMHD AM:   C*D = 16*128 = 2048 bits (+ encoder 64*128)
  //   BasicHDC AM: k*D = 4*512 = 2048 bits (+ encoder 64*512, 4x larger)
  const auto split = testing::tiny_hard_multimodal(/*seed=*/42, 120, 60);

  core::MemhdConfig mc;
  mc.dim = 128;
  mc.columns = 16;
  mc.epochs = 20;
  mc.learning_rate = 0.1f;
  mc.seed = 1;
  core::MemhdModel memhd(mc, split.train.num_features(),
                         split.train.num_classes());
  memhd.fit(split.train, &split.test);
  const double acc_memhd = memhd.evaluate(split.test);

  baselines::BaselineConfig bc;
  bc.dim = 512;
  bc.epochs = 0;  // single-pass BasicHDC per Table I
  baselines::BasicHdc basic(split.train.num_features(),
                            split.train.num_classes(), bc);
  basic.fit(split.train);
  const double acc_basic = basic.evaluate(split.test);

  EXPECT_GT(acc_memhd, acc_basic)
      << "MEMHD " << acc_memhd << " vs BasicHDC " << acc_basic;
}

TEST(EndToEnd, TrainedMemhdDeploysOnArraysWithSameAccuracy) {
  // Software accuracy and in-array accuracy must be identical on
  // DAC-quantized inputs.
  auto split = testing::tiny_multimodal(/*seed=*/5, 50, 30);
  for (auto* ds : {&split.train, &split.test})
    for (std::size_t i = 0; i < ds->size(); ++i)
      for (auto& v : ds->features().row(i))
        v = std::floor(v * 256.0f) / 256.0f;

  core::MemhdConfig cfg;
  cfg.dim = 128;
  cfg.columns = 16;
  cfg.epochs = 8;
  cfg.seed = 2;
  core::MemhdModel model(cfg, split.train.num_features(),
                         split.train.num_classes());
  model.fit(split.train);
  const double sw_acc = model.evaluate(split.test);

  imc::InMemoryPipeline pipe(model.encoder(), model.am(),
                             imc::ArrayGeometry{128, 128});
  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i)
    if (pipe.predict(split.test.sample(i)) == split.test.label(i)) ++correct;
  const double hw_acc =
      static_cast<double>(correct) / static_cast<double>(split.test.size());
  EXPECT_DOUBLE_EQ(hw_acc, sw_acc);
}

TEST(EndToEnd, MoreColumnsHelpOnMultiModalData) {
  // Fig. 4's MNIST/FMNIST trend in miniature: accuracy is non-decreasing
  // (within tolerance) as C grows on sample-rich multi-modal data.
  const auto split = testing::tiny_multimodal(/*seed=*/11, 100, 50);
  double prev = 0.0;
  for (const std::size_t columns : {4u, 16u, 32u}) {
    core::MemhdConfig cfg;
    cfg.dim = 128;
    cfg.columns = columns;
    cfg.epochs = 12;
    cfg.seed = 3;
    core::MemhdModel model(cfg, split.train.num_features(),
                           split.train.num_classes());
    model.fit(split.train, &split.test);
    const double acc = model.evaluate(split.test);
    EXPECT_GE(acc + 0.08, prev) << "C=" << columns;
    prev = std::max(prev, acc);
  }
}

TEST(EndToEnd, MemoryAccountingConsistentAcrossLayers) {
  // MemhdModel::memory_bits must equal the Table I formula and the sum of
  // its parts' self-reports.
  const auto split = testing::tiny_separable();
  core::MemhdConfig cfg;
  cfg.dim = 256;
  cfg.columns = 12;
  cfg.epochs = 1;
  core::MemhdModel model(cfg, split.train.num_features(),
                         split.train.num_classes());
  model.fit(split.train);

  core::MemoryParams p;
  p.num_features = split.train.num_features();
  p.dim = 256;
  p.num_classes = split.train.num_classes();
  p.columns = 12;
  const auto table1 = core::memory_requirement(core::ModelKind::kMemhd, p);
  EXPECT_EQ(model.memory_bits(), table1.total_bits());
  EXPECT_EQ(model.encoder().memory_bits() + model.am().memory_bits(),
            table1.total_bits());
}

TEST(EndToEnd, FiveTrialStability) {
  // The paper averages 5 trials; across seeds the accuracy spread on an
  // easy task must stay tight (no degenerate trials).
  const auto split = testing::tiny_separable(/*seed=*/99);
  double min_acc = 1.0, max_acc = 0.0;
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    core::MemhdConfig cfg;
    cfg.dim = 128;
    cfg.columns = 9;
    cfg.epochs = 8;
    cfg.seed = 100 + trial;
    core::MemhdModel model(cfg, split.train.num_features(),
                           split.train.num_classes());
    model.fit(split.train);
    const double acc = model.evaluate(split.test);
    min_acc = std::min(min_acc, acc);
    max_acc = std::max(max_acc, acc);
  }
  EXPECT_GT(min_acc, 0.8);
  EXPECT_LT(max_acc - min_acc, 0.2);
}

}  // namespace
}  // namespace memhd
