// The pin-at-batch-cut contract under fire: threads hammer a BatchServer
// (sharded and unsharded) while another thread partial_fits, publishes, and
// swaps in a loop. Every batch's responses must be exactly one version's
// answers — no torn batches, no stale reads. Run under TSan in CI.
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/batch_server.hpp"
#include "src/api/registry.hpp"
#include "src/online/model_store.hpp"
#include "test_util.hpp"

namespace memhd::online {
namespace {

/// A classifier whose every prediction IS its version's identity: all rows
/// answer `label`, and each partial_fit pass bumps the label by one. A torn
/// batch — two rows of one cut scored by different versions — therefore
/// shows up as two distinct labels inside a single flushed batch.
class StubClassifier final : public api::Classifier {
 public:
  explicit StubClassifier(data::Label label) : label_(label) {}

  core::ModelKind kind() const override {
    return core::ModelKind::kBasicHDC;
  }
  std::size_t num_features() const override { return 4; }
  std::size_t num_classes() const override { return 1u << 15; }
  std::size_t dim() const override { return 64; }
  bool fitted() const override { return true; }
  void fit(const data::Dataset&, const data::Dataset*) override {}

  data::Label predict(std::span<const float>) const override {
    return label_;
  }
  std::vector<data::Label> predict_batch(
      const common::Matrix& features) const override {
    return std::vector<data::Label>(features.rows(), label_);
  }
  std::size_t score_rows() const override { return 1; }
  void scores_batch(const common::Matrix& features,
                    std::vector<std::uint32_t>& out) const override {
    out.assign(features.rows(), 0);
  }
  core::MemoryBreakdown memory() const override { return {}; }
  void save_payload(std::ostream&) const override {
    throw std::logic_error("stub: not serializable");
  }

  bool supports_partial_fit() const override { return true; }
  core::PartialFitReport partial_fit(
      const common::Matrix& samples,
      std::span<const data::Label>) override {
    ++label_;
    core::PartialFitReport report;
    report.samples = samples.rows();
    return report;
  }
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<StubClassifier>(label_);
  }

 private:
  data::Label label_;
};

/// Submits rounds of single-query requests and flushes each round as ONE
/// manual batch while a trainer thread publishes and swaps continuously.
/// Every response inside a round must carry the same (version-identifying)
/// label — the pin happened once, at the batch cut.
void hammer_manual(const api::BatchServerOptions& options) {
  auto store = std::make_shared<ModelStore>(
      std::make_unique<StubClassifier>(data::Label{0}));
  api::BatchServer server(store, options);

  std::atomic<bool> stop{false};
  std::thread trainer([&] {
    const common::Matrix one_row(1, 4);
    const std::vector<data::Label> labels(1, data::Label{0});
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      store->partial_fit(one_row, labels);
      store->publish();
      // Exercise swaps too: hop to the oldest retained version and back.
      const auto stats = store->stats();
      store->swap(stats.front().id);
      store->swap(stats.back().id);
      ++i;
    }
  });

  const std::vector<float> query(4, 0.5f);
  constexpr std::size_t kRounds = 300;
  constexpr std::size_t kPerRound = 8;
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<std::future<data::Label>> futures;
    futures.reserve(kPerRound);
    for (std::size_t i = 0; i < kPerRound; ++i)
      futures.push_back(server.submit(query));
    ASSERT_EQ(server.flush(), kPerRound);
    const data::Label first = futures.front().get();
    for (std::size_t i = 1; i < kPerRound; ++i)
      ASSERT_EQ(futures[i].get(), first)
          << "torn batch in round " << round << ": row " << i
          << " answered by a different version than row 0";
  }
  stop.store(true);
  trainer.join();
  server.drain();
}

TEST(HotSwap, NoTornBatchesUnsharded) {
  api::BatchServerOptions options;
  options.background = false;
  hammer_manual(options);
}

TEST(HotSwap, NoTornBatchesSharded) {
  api::BatchServerOptions options;
  options.background = false;
  options.shards = 4;
  options.shard_quantum = 2;  // 8-row rounds split into 4 pieces
  hammer_manual(options);
}

TEST(HotSwap, BackgroundServingTracksSwapsWithRealModel) {
  // Real MEMHD lineage: three published versions with precomputed answers.
  // Hammer threads submit probe rows through a live background server while
  // a swapper flips the current version; every response must be bit-equal
  // to SOME version's answer for that row (and the per-version serving
  // counters must add up).
  const auto split = testing::tiny_multimodal(/*seed=*/53,
                                              /*train_per_class=*/50,
                                              /*test_per_class=*/20);
  api::ModelOptions opts;
  opts.dim = 256;
  opts.columns = 16;
  opts.epochs = 2;
  opts.seed = 7;
  auto model = api::make("memhd", split.train.num_features(),
                         split.train.num_classes(), opts);
  model->fit(split.train);

  auto store = std::make_shared<ModelStore>(std::move(model));
  store->partial_fit(split.test.features(), split.test.labels());
  const VersionId v1 = store->publish();
  store->partial_fit(split.train.features(), split.train.labels());
  const VersionId v2 = store->publish();
  const std::vector<VersionId> versions{0, v1, v2};

  const common::Matrix& probes = split.test.features();
  std::map<VersionId, std::vector<data::Label>> expected;
  for (const VersionId id : versions) {
    store->swap(id);
    expected[id] = store->pin().model->predict_batch(probes);
  }

  api::BatchServerOptions options;
  options.max_batch = 16;
  options.shards = 2;
  options.shard_quantum = 4;
  api::BatchServer server(store, options);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      store->swap(versions[i++ % versions.size()]);
  });

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIters = 20;
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t iter = 0; iter < kIters; ++iter) {
        for (std::size_t row = t; row < probes.rows(); row += kThreads) {
          auto future = server.submit(probes.row(row));
          submitted.fetch_add(1, std::memory_order_relaxed);
          const data::Label got = future.get();
          bool known = false;
          for (const VersionId id : versions)
            known |= (expected.at(id)[row] == got);
          if (!known) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true);
  swapper.join();
  server.drain();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a response matched NO published version — stale or torn read";
  std::uint64_t rows_served = 0;
  for (const auto& vs : store->stats()) rows_served += vs.rows_served;
  EXPECT_EQ(rows_served, submitted.load());
}

TEST(HotSwap, ActiveVersionFollowsTheStore) {
  auto store = std::make_shared<ModelStore>(
      std::make_unique<StubClassifier>(data::Label{0}));
  api::BatchServerOptions options;
  options.background = false;
  api::BatchServer server(store, options);
  EXPECT_EQ(server.active_version(), 0u);
  store->partial_fit(common::Matrix(1, 4), std::vector<data::Label>(1, 0));
  const VersionId v1 = store->publish();
  EXPECT_EQ(server.active_version(), v1);
  store->rollback();
  EXPECT_EQ(server.active_version(), 0u);
}

}  // namespace
}  // namespace memhd::online
