// ModelStore: COW versioning semantics, swap/rollback, retention, the
// MHDAPI02 lineage round-trip (bit-identical per version), and backward
// compatibility of the pre-version MHDAPI01 container.
#include "src/online/model_store.hpp"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/adapters.hpp"
#include "src/api/registry.hpp"
#include "test_util.hpp"

namespace memhd::online {
namespace {

struct Fixture {
  data::TrainTestSplit split;
  std::vector<data::Label> v0_direct;

  Fixture() : split(testing::tiny_multimodal(/*seed=*/19,
                                             /*train_per_class=*/50,
                                             /*test_per_class=*/25)) {}

  std::unique_ptr<api::Classifier> fitted() const {
    api::ModelOptions opts;
    opts.dim = 256;
    opts.columns = 16;
    opts.epochs = 2;
    opts.seed = 9;
    auto model = api::make("memhd", split.train.num_features(),
                           split.train.num_classes(), opts);
    model->fit(split.train);
    return model;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(ModelStore, PublishesV0AndPinsIt) {
  const auto& f = fixture();
  ModelStore store(f.fitted());
  EXPECT_EQ(store.current_version(), 0u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.has_pending());
  const auto pinned = store.pin();
  EXPECT_EQ(pinned.version, 0u);
  ASSERT_NE(pinned.model, nullptr);
  EXPECT_TRUE(pinned.model->fitted());
  EXPECT_THROW(store.publish(), std::logic_error);  // nothing pending
}

TEST(ModelStore, PartialFitIsInvisibleUntilPublish) {
  const auto& f = fixture();
  ModelStore store(f.fitted());
  const auto pinned_before = store.pin();
  const auto baseline =
      pinned_before.model->predict_batch(f.split.test.features());

  store.partial_fit(f.split.test.features(), f.split.test.labels());
  EXPECT_TRUE(store.has_pending());
  // Still serving v0, bit-identically: the working copy is private.
  const auto pinned_mid = store.pin();
  EXPECT_EQ(pinned_mid.version, 0u);
  EXPECT_EQ(pinned_mid.model->predict_batch(f.split.test.features()),
            baseline);

  const VersionId v1 = store.publish();
  EXPECT_EQ(v1, 1u);
  EXPECT_FALSE(store.has_pending());
  EXPECT_EQ(store.current_version(), v1);
  // The old pin is still alive and still v0's answers (immutability).
  EXPECT_EQ(pinned_before.model->predict_batch(f.split.test.features()),
            baseline);
}

TEST(ModelStore, SwapAndRollbackMoveTheCurrentPointer) {
  const auto& f = fixture();
  ModelStore store(f.fitted());
  store.partial_fit(f.split.test.features(), f.split.test.labels());
  const VersionId v1 = store.publish();
  store.partial_fit(f.split.train.features(), f.split.train.labels());
  const VersionId v2 = store.publish();
  EXPECT_EQ(store.current_version(), v2);

  store.swap(0);
  EXPECT_EQ(store.current_version(), 0u);
  EXPECT_EQ(store.pin().version, 0u);
  store.swap(v2);
  store.rollback();  // v2's parent is v1
  EXPECT_EQ(store.current_version(), v1);
  store.rollback();  // v1's parent is v0
  EXPECT_EQ(store.current_version(), 0u);
  EXPECT_THROW(store.rollback(), std::logic_error);  // root
  EXPECT_THROW(store.swap(99), UnknownVersionError);

  const auto stats = store.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].id, 0u);
  EXPECT_TRUE(stats[0].current);
  EXPECT_EQ(stats[1].parent, 0u);
  EXPECT_EQ(stats[2].parent, v1);
  EXPECT_EQ(stats[1].samples_trained, f.split.test.size());
  EXPECT_EQ(stats[2].samples_trained,
            f.split.test.size() + f.split.train.size());
}

TEST(ModelStore, PrunesOldestNonCurrentBeyondMaxVersions) {
  const auto& f = fixture();
  ModelStoreOptions options;
  options.max_versions = 2;
  ModelStore store(f.fitted(), options);
  // Keep an external pin on v0: pruning must not invalidate it.
  const auto pinned_v0 = store.pin();
  const auto v0_answers =
      pinned_v0.model->predict_batch(f.split.test.features());

  store.partial_fit(f.split.test.features(), f.split.test.labels());
  store.publish();  // v1 -> {v0, v1}
  store.partial_fit(f.split.test.features(), f.split.test.labels());
  store.publish();  // v2 -> v0 pruned, {v1, v2}
  EXPECT_EQ(store.size(), 2u);
  EXPECT_THROW(store.swap(0), UnknownVersionError);
  // The in-flight pin outlives the prune.
  EXPECT_EQ(pinned_v0.model->predict_batch(f.split.test.features()),
            v0_answers);
  // note_scored on a pruned version is silently ignored.
  store.note_scored(0, 17);
}

TEST(ModelStore, LineageRoundTripsBitIdentically) {
  const auto& f = fixture();
  ModelStore store(f.fitted());
  store.partial_fit(f.split.test.features(), f.split.test.labels());
  const VersionId v1 = store.publish();
  store.partial_fit(f.split.train.features(), f.split.train.labels());
  const VersionId v2 = store.publish();
  store.swap(v1);  // persist a non-tip current pointer too

  std::stringstream stream;
  save_store(store, stream);
  const auto loaded = load_store(stream);

  EXPECT_EQ(loaded->current_version(), v1);
  EXPECT_EQ(loaded->size(), 3u);
  const auto before = store.stats();
  const auto after = loaded->stats();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].id, after[i].id);
    EXPECT_EQ(before[i].parent, after[i].parent);
    EXPECT_EQ(before[i].current, after[i].current);
    EXPECT_EQ(before[i].samples_trained, after[i].samples_trained);
    EXPECT_EQ(after[i].batches_served, 0u);  // counters reset on load
  }

  // Every version predicts bit-identically to its pre-save self.
  for (const VersionId id : {VersionId{0}, v1, v2}) {
    store.swap(id);
    loaded->swap(id);
    EXPECT_EQ(loaded->pin().model->predict_batch(f.split.test.features()),
              store.pin().model->predict_batch(f.split.test.features()))
        << "version " << id;
  }

  // A published version trained past the deployed class space survives the
  // round trip too (extended models re-serialize their grown shape).
  std::vector<data::Label> shifted(f.split.test.labels());
  for (auto& l : shifted)
    l = static_cast<data::Label>(l + f.split.test.num_classes());
  loaded->partial_fit(f.split.test.features(), shifted);
  const auto v3 = loaded->publish();
  std::stringstream stream2;
  save_store(*loaded, stream2);
  const auto reloaded = load_store(stream2);
  EXPECT_EQ(reloaded->current_version(), v3);
  EXPECT_EQ(reloaded->pin().model->predict_batch(f.split.test.features()),
            loaded->pin().model->predict_batch(f.split.test.features()));
}

TEST(ModelStore, PreVersionContainerStillLoads) {
  // Satellite (c): a plain MHDAPI01 file written by api::save keeps loading
  // through api::load — the MHDAPI02 store container did not disturb it —
  // and can seed a fresh store as v0.
  const auto& f = fixture();
  auto model = f.fitted();
  const auto direct = model->predict_batch(f.split.test.features());
  std::stringstream stream;
  api::save(*model, stream);
  auto back = api::load(stream);
  EXPECT_EQ(back->predict_batch(f.split.test.features()), direct);

  ModelStore store(std::move(back));
  EXPECT_EQ(store.pin().model->predict_batch(f.split.test.features()),
            direct);
  // And the store container rejects a bare model file (distinct magics).
  std::stringstream stream2;
  api::save(*model, stream2);
  EXPECT_THROW(load_store(stream2), std::runtime_error);
}

TEST(ModelStore, RematVersionsShareSeedOnlyEncoderAndHotSwap) {
  // With a rematerialized basis, every COW version's "shared encoder
  // plane" is nothing heavier than a seed: publishing versions adds AM
  // copies only, and a store round trip reconstructs the same seed-only
  // encoders.
  const auto& f = fixture();
  api::ModelOptions opts;
  opts.dim = 256;
  opts.columns = 16;
  opts.epochs = 2;
  opts.seed = 9;
  opts.basis = hdc::BasisKind::kRematerialized;
  auto model = api::make("memhd", f.split.train.num_features(),
                         f.split.train.num_classes(), opts);
  model->fit(f.split.train);

  // Same options, materialized: identical predictions (the basis knob
  // never changes outputs, even through the api registry path).
  auto mopts = opts;
  mopts.basis = hdc::BasisKind::kMaterialized;
  auto mat = api::make("memhd", f.split.train.num_features(),
                       f.split.train.num_classes(), mopts);
  mat->fit(f.split.train);
  const auto direct = model->predict_batch(f.split.test.features());
  EXPECT_EQ(mat->predict_batch(f.split.test.features()), direct);

  ModelStore store(std::move(model));
  store.partial_fit(f.split.test.features(), f.split.test.labels());
  const VersionId v1 = store.publish();

  // Every version holds a seed-only encoder plane; the versions share it
  // by construction (COW clones share the encoder shared_ptr).
  for (const VersionId id : {VersionId{0}, v1}) {
    store.swap(id);
    const auto pinned = store.pin();
    const auto* memhd =
        dynamic_cast<const api::MemhdClassifier*>(pinned.model.get());
    ASSERT_NE(memhd, nullptr);
    EXPECT_EQ(memhd->model().config().basis,
              hdc::BasisKind::kRematerialized);
    EXPECT_LE(memhd->model().encoder().resident_bytes(), 64u);
  }

  // Hot swap + store persistence round trip, still seed-only.
  std::stringstream stream;
  save_store(store, stream);
  const auto loaded = load_store(stream);
  EXPECT_EQ(loaded->current_version(), v1);
  for (const VersionId id : {VersionId{0}, v1}) {
    store.swap(id);
    loaded->swap(id);
    EXPECT_EQ(loaded->pin().model->predict_batch(f.split.test.features()),
              store.pin().model->predict_batch(f.split.test.features()));
    const auto* memhd = dynamic_cast<const api::MemhdClassifier*>(
        loaded->pin().model.get());
    ASSERT_NE(memhd, nullptr);
    EXPECT_LE(memhd->model().encoder().resident_bytes(), 64u);
  }
  EXPECT_EQ(loaded->pin().model->predict_batch(f.split.test.features()),
            direct);
}

TEST(ModelStore, NoteScoredAccumulatesPerVersion) {
  const auto& f = fixture();
  ModelStore store(f.fitted());
  store.partial_fit(f.split.test.features(), f.split.test.labels());
  const VersionId v1 = store.publish();
  store.note_scored(0, 10);
  store.note_scored(v1, 5);
  store.note_scored(v1, 7);
  const auto stats = store.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].batches_served, 1u);
  EXPECT_EQ(stats[0].rows_served, 10u);
  EXPECT_EQ(stats[1].batches_served, 2u);
  EXPECT_EQ(stats[1].rows_served, 12u);
}

}  // namespace
}  // namespace memhd::online
