// Incremental training: mispredict-driven updates recover drifted accuracy,
// never-seen classes are learnable post-deployment, and only touched
// centroid rows change (the bit-identity property COW versioning relies on).
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/adapters.hpp"
#include "src/api/registry.hpp"
#include "src/common/rng.hpp"
#include "src/core/model.hpp"
#include "src/data/synthetic.hpp"
#include "test_util.hpp"

namespace memhd::core {
namespace {

MemhdConfig small_config() {
  MemhdConfig cfg;
  cfg.dim = 256;
  cfg.columns = 16;
  cfg.epochs = 3;
  cfg.seed = 5;
  return cfg;
}

/// A drifted copy of `base`: features shift by `shift` with alternating
/// sign per dimension (clamped back into range). Strong enough to hurt a
/// frozen model, weak enough that the class structure survives.
data::Dataset drifted(const data::Dataset& base, float shift) {
  common::Matrix features = base.features();
  for (std::size_t i = 0; i < features.rows(); ++i) {
    auto row = features.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      const float delta = (j % 2 == 0) ? shift : -shift;
      row[j] = std::clamp(row[j] + delta, 0.0f, 1.0f);
    }
  }
  return data::Dataset(base.name() + "-drift", std::move(features),
                       base.labels(), base.num_classes());
}

TEST(PartialFit, RecoversAccuracyUnderDrift) {
  const auto split = testing::tiny_multimodal(/*seed=*/17,
                                              /*train_per_class=*/60,
                                              /*test_per_class=*/40);
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);

  constexpr float kShift = 0.40f;
  const data::Dataset drift_train = drifted(split.train, kShift);
  const data::Dataset drift_test = drifted(split.test, kShift);

  const double frozen = model.evaluate(drift_test);

  MemhdModel adapted(model);  // train a copy; `model` stays the baseline
  PartialFitReport report;
  for (int pass = 0; pass < 5; ++pass) {
    const auto r =
        adapted.partial_fit(drift_train.features(), drift_train.labels());
    report.mispredicted += r.mispredicted;
    report.samples += r.samples;
  }
  const double recovered = adapted.evaluate(drift_test);

  EXPECT_GT(report.mispredicted, 0u);
  // The ISSUE's learning margin: incremental training must beat the frozen
  // model decisively on the drifted distribution.
  EXPECT_GT(recovered, frozen + 0.10)
      << "frozen=" << frozen << " recovered=" << recovered;
  // And the frozen copy must not have moved (COW: updates on the copy).
  EXPECT_DOUBLE_EQ(model.evaluate(drift_test), frozen);
}

TEST(PartialFit, LearnsNeverSeenClassAboveChance) {
  const auto split = testing::tiny_multimodal(/*seed=*/23,
                                              /*train_per_class=*/60,
                                              /*test_per_class=*/40);
  const std::size_t old_classes = split.train.num_classes();
  // Deployment never saw the top class id: train on classes [0, n-1).
  const data::Label held_out = static_cast<data::Label>(old_classes - 1);
  std::vector<std::size_t> known;
  for (std::size_t i = 0; i < split.train.size(); ++i)
    if (split.train.label(i) != held_out) known.push_back(i);
  // Rebuild with the narrower class space [0, n-1) (labels are unchanged:
  // the held-out class is the top id).
  const data::Dataset known_subset = split.train.subset(known, "deploy");
  data::Dataset deploy_train("deploy", known_subset.features(),
                             known_subset.labels(), old_classes - 1);

  MemhdModel model(small_config(), deploy_train.num_features(),
                   deploy_train.num_classes());
  model.fit(deploy_train);
  EXPECT_EQ(model.num_classes(), old_classes - 1);

  // The unseen class arrives online, labeled with the NEXT id.
  std::vector<std::size_t> unseen_train;
  for (std::size_t i = 0; i < split.train.size(); ++i)
    if (split.train.label(i) == held_out) unseen_train.push_back(i);
  common::Matrix samples(unseen_train.size(),
                         split.train.num_features());
  for (std::size_t i = 0; i < unseen_train.size(); ++i) {
    const auto row = split.train.sample(unseen_train[i]);
    std::copy(row.begin(), row.end(), samples.row(i).begin());
  }
  const std::size_t columns_before = model.config().columns;
  std::vector<data::Label> labels(unseen_train.size(),
                                  static_cast<data::Label>(old_classes - 1));
  const auto report = model.partial_fit(samples, labels);

  EXPECT_EQ(report.new_classes, 1u);
  EXPECT_GT(report.new_columns, 0u);
  EXPECT_EQ(model.num_classes(), old_classes);
  EXPECT_EQ(model.config().columns, columns_before + report.new_columns);

  // Recall on held-out samples of the appended class must beat chance.
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (split.test.label(i) != held_out) continue;
    ++total;
    if (model.predict(split.test.sample(i)) == held_out) ++correct;
  }
  ASSERT_GT(total, 0u);
  const double recall = static_cast<double>(correct) /
                        static_cast<double>(total);
  const double chance = 1.0 / static_cast<double>(old_classes);
  EXPECT_GT(recall, 2.0 * chance) << "recall=" << recall;
  // Extended learning must not destroy the deployed classes either: overall
  // accuracy stays well above chance.
  EXPECT_GT(model.evaluate(split.test), 0.5);
}

TEST(PartialFit, OnlyTouchedBinaryRowsChange) {
  const auto split = testing::tiny_multimodal(/*seed=*/31);
  MemhdModel parent(small_config(), split.train.num_features(),
                    split.train.num_classes());
  parent.fit(split.train);

  MemhdModel child(parent);
  const auto report = child.partial_fit(split.test.features(),
                                        split.test.labels());
  ASSERT_GT(report.touched_centroids, 0u);
  ASSERT_LT(report.touched_centroids, parent.config().columns)
      << "fixture too hard: every centroid touched, nothing to compare";

  std::size_t changed = 0;
  for (std::size_t col = 0; col < parent.config().columns; ++col) {
    const auto before = parent.am().binary().row_vector(col);
    const auto after = child.am().binary().row_vector(col);
    if (!(before == after)) ++changed;
  }
  // Every changed row must be accounted for by the touched set; untouched
  // rows are bit-identical (what lets COW versions share the plane).
  EXPECT_LE(changed, report.touched_centroids);
  EXPECT_LT(changed, parent.config().columns);
}

TEST(PartialFit, EmptyBatchIsANoOp) {
  const auto split = testing::tiny_separable();
  MemhdModel model(small_config(), split.train.num_features(),
                   split.train.num_classes());
  model.fit(split.train);
  const auto before = model.predict_batch(split.test.features());
  const auto report =
      model.partial_fit(common::Matrix(0, model.num_features()), {});
  EXPECT_EQ(report.samples, 0u);
  EXPECT_EQ(report.touched_centroids, 0u);
  EXPECT_EQ(model.predict_batch(split.test.features()), before);
}

TEST(PartialFit, ClassifierSurfaceForwardsAndBaselinesDecline) {
  const auto split = testing::tiny_separable();
  api::ModelOptions opts;
  opts.dim = 128;
  opts.columns = 8;
  opts.epochs = 2;
  auto memhd = api::make("memhd", split.train.num_features(),
                         split.train.num_classes(), opts);
  memhd->fit(split.train);
  EXPECT_TRUE(memhd->supports_partial_fit());
  const auto report = memhd->partial_fit(split.test.features(),
                                         split.test.labels());
  EXPECT_EQ(report.samples, split.test.size());

  auto baseline = api::make("basichdc", split.train.num_features(),
                            split.train.num_classes(), opts);
  baseline->fit(split.train);
  EXPECT_FALSE(baseline->supports_partial_fit());
  EXPECT_THROW(baseline->partial_fit(split.test.features(),
                                     split.test.labels()),
               std::logic_error);
}

TEST(PartialFit, CloneIsIndependentAndBitExact) {
  const auto split = testing::tiny_multimodal(/*seed=*/43);
  api::ModelOptions opts;
  opts.dim = 256;
  opts.columns = 16;
  opts.epochs = 2;
  auto original = api::make("memhd", split.train.num_features(),
                            split.train.num_classes(), opts);
  original->fit(split.train);
  const auto before = original->predict_batch(split.test.features());

  auto copy = original->clone();
  EXPECT_EQ(copy->predict_batch(split.test.features()), before);

  // Training the clone must not disturb the original (COW building block).
  copy->partial_fit(split.test.features(), split.test.labels());
  EXPECT_EQ(original->predict_batch(split.test.features()), before);
}

}  // namespace
}  // namespace memhd::core
