// CascadeSearcher: the exact-mode bit-identity contract (property-tested
// against the exhaustive kernel over odd shapes and engineered ties), the
// threshold-mode quality contract on a fitted model, config validation, and
// stats accounting.
#include "src/search/cascade.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/common/bit_matrix.hpp"
#include "src/common/bit_vector.hpp"
#include "src/common/bitops_batch.hpp"
#include "src/common/rng.hpp"

namespace memhd::search {
namespace {

std::vector<common::BitVector> random_queries(std::size_t n, std::size_t bits,
                                              std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<common::BitVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(common::BitVector::random(bits, rng));
  return out;
}

std::vector<std::uint32_t> exhaustive(const common::BitMatrix& rows,
                                      std::span<const common::BitVector> qs) {
  common::BatchScorer scorer(rows);
  std::vector<std::uint32_t> out;
  scorer.dot_argmax(qs, out);
  return out;
}

// ---------------------------------------------------------------- exact --

TEST(CascadeExact, MatchesExhaustiveAcrossShapes) {
  // The property the mode exists for: bit-identical first-wins argmax, at
  // every sample fraction, over shapes with and without ragged tail words.
  const struct {
    std::size_t rows, bits;
  } shapes[] = {{1, 64}, {3, 65}, {17, 130}, {64, 256}, {193, 1000},
                {256, 2048}};
  const double fractions[] = {0.05, 0.25, 0.5, 0.75, 1.0};
  for (const auto& sh : shapes) {
    common::Rng rng(0x5EEDULL + sh.rows * 31 + sh.bits);
    const auto plane = common::BitMatrix::random(sh.rows, sh.bits, rng);
    const auto queries = random_queries(32, sh.bits, sh.rows * 977 + sh.bits);
    const auto want = exhaustive(plane, queries);
    for (const double f : fractions) {
      CascadeConfig cfg;
      cfg.mode = CascadeMode::kExact;
      cfg.sample_fraction = f;
      cfg.shortlist = 64;
      const CascadeSearcher cascade(plane, cfg);
      std::vector<std::uint32_t> got;
      CascadeStats stats;
      cascade.dot_argmax(queries, got, &stats);
      ASSERT_EQ(got, want) << "rows=" << sh.rows << " bits=" << sh.bits
                           << " fraction=" << f;
      EXPECT_EQ(stats.queries, queries.size());
    }
  }
}

TEST(CascadeExact, DuplicateRowsPreserveFirstWins) {
  // Engineered ties: every row duplicated, plus an all-zeros pair. The
  // exhaustive kernel answers the LOWEST index of each tied group; the
  // certified rescore must too — including when the duplicate pair
  // straddles the shortlist ordering.
  common::Rng rng(99);
  const std::size_t bits = 192;
  const auto half = common::BitMatrix::random(8, bits, rng);
  common::BitMatrix plane(18, bits);
  for (std::size_t r = 0; r < 8; ++r) {
    std::memcpy(plane.row(2 * r), half.row(r),
                half.words_per_row() * sizeof(std::uint64_t));
    std::memcpy(plane.row(2 * r + 1), half.row(r),
                half.words_per_row() * sizeof(std::uint64_t));
  }
  // Rows 16, 17 stay all-zero: ties at score 0 for a zero query.
  auto queries = random_queries(64, bits, 1234);
  queries.push_back(common::BitVector(bits));  // all zeros

  const auto want = exhaustive(plane, queries);
  for (const std::uint32_t w : want) EXPECT_EQ(w % 2, 0u);  // lower twin

  for (const double f : {0.34, 0.67, 1.0}) {
    CascadeConfig cfg;
    cfg.mode = CascadeMode::kExact;
    cfg.sample_fraction = f;
    cfg.shortlist = 6;  // smaller than the plane: forces fallbacks too
    const CascadeSearcher cascade(plane, cfg);
    std::vector<std::uint32_t> got;
    cascade.dot_argmax(queries, got);
    ASSERT_EQ(got, want) << "fraction=" << f;
  }
}

TEST(CascadeExact, StatsPartitionTheBatch) {
  // queries = early_exits + fallbacks + rescored queries; every rescored
  // query touched at least 2 and at most `shortlist` rows.
  common::Rng rng(5);
  const auto plane = common::BitMatrix::random(128, 512, rng);
  const auto queries = random_queries(256, 512, 42);
  CascadeConfig cfg;
  cfg.mode = CascadeMode::kExact;
  cfg.sample_fraction = 0.75;
  cfg.shortlist = 32;
  const CascadeSearcher cascade(plane, cfg);
  std::vector<std::uint32_t> got;
  CascadeStats stats;
  cascade.dot_argmax(queries, got, &stats);
  EXPECT_EQ(stats.queries, queries.size());
  const std::uint64_t resolved =
      stats.queries - stats.early_exits - stats.fallbacks;
  EXPECT_GE(stats.rescored_rows, 2 * resolved);
  EXPECT_LE(stats.rescored_rows, cfg.shortlist * resolved);
}

// ------------------------------------------------------------ threshold --

TEST(CascadeThreshold, ShortlistCoveringPlaneIsExact) {
  // With shortlist >= rows the top-L selection keeps every row, so the
  // rescore IS the exhaustive argmax — including tie order.
  common::Rng rng(7);
  const auto plane = common::BitMatrix::random(48, 300, rng);
  auto queries = random_queries(96, 300, 8);
  queries.push_back(common::BitVector(300));
  const auto want = exhaustive(plane, queries);
  CascadeConfig cfg;
  cfg.mode = CascadeMode::kThreshold;
  cfg.sample_fraction = 0.2;
  cfg.shortlist = 48;
  const CascadeSearcher cascade(plane, cfg);
  std::vector<std::uint32_t> got;
  cascade.dot_argmax(queries, got);
  EXPECT_EQ(got, want);
}

TEST(CascadeThreshold, StructuredWorkloadHitsShortlist) {
  // Queries near distinct prototypes: the prescreen shortlist should keep
  // the true winner essentially always (this is the regime the mode is
  // for), so the cascade argmax matches exhaustive despite the pruning.
  common::Rng rng(21);
  const std::size_t bits = 1024, nrows = 256;
  const auto plane = common::BitMatrix::random(nrows, bits, rng);
  std::vector<common::BitVector> queries;
  for (std::size_t q = 0; q < 128; ++q) {
    common::BitVector hv(bits);
    const std::uint64_t* proto = plane.row(rng.next_u64() % nrows);
    std::memcpy(hv.words(), proto,
                plane.words_per_row() * sizeof(std::uint64_t));
    for (std::size_t i = 0; i < bits / 10; ++i)
      hv.flip(rng.next_u64() % bits);
    queries.push_back(std::move(hv));
  }
  const auto want = exhaustive(plane, queries);
  CascadeConfig cfg;
  cfg.mode = CascadeMode::kThreshold;
  cfg.sample_fraction = 0.125;
  cfg.shortlist = 32;
  const CascadeSearcher cascade(plane, cfg);
  std::vector<std::uint32_t> got;
  CascadeStats stats;
  cascade.dot_argmax(queries, got, &stats);
  std::size_t agree = 0;
  for (std::size_t q = 0; q < want.size(); ++q) agree += got[q] == want[q];
  EXPECT_GE(agree, want.size() * 97 / 100);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.rescored_rows, cfg.shortlist * stats.queries);
}

TEST(CascadeThreshold, EarlyExitMarginSkipsRescore) {
  // Queries that ARE prototype rows: the prescreen margin is huge, so a
  // modest early_exit_margin answers them with zero stage-2 work — and
  // still correctly.
  common::Rng rng(33);
  const std::size_t bits = 2048, nrows = 64;
  const auto plane = common::BitMatrix::random(nrows, bits, rng);
  std::vector<common::BitVector> queries;
  for (std::size_t r = 0; r < nrows; ++r) {
    common::BitVector hv(bits);
    std::memcpy(hv.words(), plane.row(r),
                plane.words_per_row() * sizeof(std::uint64_t));
    queries.push_back(std::move(hv));
  }
  CascadeConfig cfg;
  cfg.mode = CascadeMode::kThreshold;
  cfg.sample_fraction = 0.25;
  cfg.shortlist = 8;
  cfg.early_exit_margin = 16;
  const CascadeSearcher cascade(plane, cfg);
  std::vector<std::uint32_t> got;
  CascadeStats stats;
  cascade.dot_argmax(queries, got, &stats);
  const auto want = exhaustive(plane, queries);
  EXPECT_EQ(got, want);
  EXPECT_GT(stats.early_exits, 0u);
}

// ------------------------------------------------------------- plumbing --

TEST(Cascade, DegenerateSampleForwardsToExhaustive) {
  common::Rng rng(3);
  const auto plane = common::BitMatrix::random(10, 64, rng);  // 1 word/row
  const auto queries = random_queries(16, 64, 4);
  CascadeConfig cfg;
  cfg.sample_fraction = 0.01;  // rounds up to the mandatory 1 word = all
  const CascadeSearcher cascade(plane, cfg);
  EXPECT_TRUE(cascade.degenerate());
  std::vector<std::uint32_t> got;
  CascadeStats stats;
  cascade.dot_argmax(queries, got, &stats);
  EXPECT_EQ(got, exhaustive(plane, queries));
  EXPECT_EQ(stats.fallbacks, queries.size());
}

TEST(Cascade, SameConfigSameSeedIsDeterministic) {
  // The prescreen plane is a pure function of (seed, shape, fraction):
  // two searchers over the same plane answer identically — the property
  // serialization round-trips rely on.
  common::Rng rng(17);
  const auto plane = common::BitMatrix::random(96, 777, rng);
  const auto queries = random_queries(64, 777, 18);
  CascadeConfig cfg;
  cfg.mode = CascadeMode::kThreshold;
  cfg.sample_fraction = 0.3;
  cfg.shortlist = 12;
  const CascadeSearcher a(plane, cfg);
  const CascadeSearcher b(plane, cfg);
  EXPECT_EQ(a.sampled_words(), b.sampled_words());
  std::vector<std::uint32_t> ra, rb;
  a.dot_argmax(queries, ra);
  b.dot_argmax(queries, rb);
  EXPECT_EQ(ra, rb);
}

TEST(Cascade, InvalidConfigThrows) {
  common::Rng rng(1);
  const auto plane = common::BitMatrix::random(4, 128, rng);
  CascadeConfig bad;
  bad.sample_fraction = 0.0;
  EXPECT_THROW(CascadeSearcher(plane, bad), std::invalid_argument);
  bad.sample_fraction = 1.5;
  EXPECT_THROW(CascadeSearcher(plane, bad), std::invalid_argument);
  bad.sample_fraction = 0.5;
  bad.shortlist = 0;
  EXPECT_THROW(CascadeSearcher(plane, bad), std::invalid_argument);
}

TEST(Cascade, EmptyBatchIsANoOp) {
  common::Rng rng(2);
  const auto plane = common::BitMatrix::random(4, 128, rng);
  const CascadeSearcher cascade(plane, CascadeConfig{});
  std::vector<std::uint32_t> out(3, 7u);
  cascade.dot_argmax(std::span<const common::BitVector>{}, out);
  EXPECT_TRUE(out.empty());  // resized to the batch
}

}  // namespace
}  // namespace memhd::search
