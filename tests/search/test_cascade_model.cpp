// The cascade threaded through the model stack: MemhdModel batch paths,
// api::Classifier knobs (predict == predict_batch even in threshold mode),
// MHDAPI/MEMHD003 serialization of the config, accuracy on a fitted model,
// and the hot-swap hammer with per-shard pinned prescreen planes.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/batch_server.hpp"
#include "src/api/registry.hpp"
#include "src/core/model.hpp"
#include "src/core/serialize.hpp"
#include "src/online/model_store.hpp"
#include "src/search/cascade.hpp"
#include "test_util.hpp"

namespace memhd::search {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::MemhdConfig cascade_config(CascadeMode mode) {
  core::MemhdConfig cfg;
  cfg.dim = 512;
  cfg.columns = 24;
  cfg.epochs = 3;
  cfg.seed = 11;
  cfg.cascade.enabled = true;
  cfg.cascade.mode = mode;
  cfg.cascade.sample_fraction = 0.5;
  cfg.cascade.shortlist = 16;
  return cfg;
}

TEST(CascadeModel, ExactModeMatchesExhaustiveModel) {
  // Same fit, cascade on (exact) vs off: every prediction bit-identical.
  const auto split = testing::tiny_multimodal();
  auto cfg = cascade_config(CascadeMode::kExact);
  core::MemhdModel with(cfg, split.train.num_features(),
                        split.train.num_classes());
  with.fit(split.train);
  cfg.cascade.enabled = false;
  core::MemhdModel without(cfg, split.train.num_features(),
                           split.train.num_classes());
  without.fit(split.train);

  ASSERT_NE(with.cascade(), nullptr);
  EXPECT_EQ(without.cascade(), nullptr);
  EXPECT_EQ(with.predict_batch(split.test.features()),
            without.predict_batch(split.test.features()));
}

TEST(CascadeModel, PredictMatchesPredictBatchInThresholdMode) {
  // The api contract: per-sample predict must route through the SAME
  // search engine as the batch path — in threshold mode the shortlist is
  // part of the answer, so a predict() that bypassed the cascade would
  // diverge.
  const auto split = testing::tiny_multimodal();
  const auto cfg = cascade_config(CascadeMode::kThreshold);
  core::MemhdModel model(cfg, split.train.num_features(),
                         split.train.num_classes());
  model.fit(split.train);
  const auto batch = model.predict_batch(split.test.features());
  for (std::size_t i = 0; i < split.test.size(); ++i)
    ASSERT_EQ(model.predict(split.test.sample(i)), batch[i]) << "row " << i;
}

TEST(CascadeModel, ThresholdAccuracyWithinHalfPercent) {
  // The acceptance bar on a fitted model: threshold-mode evaluation within
  // 0.5% of exhaustive on held-out data.
  const auto split = testing::tiny_hard_multimodal();
  auto cfg = cascade_config(CascadeMode::kThreshold);
  cfg.cascade.sample_fraction = 0.125;
  core::MemhdModel with(cfg, split.train.num_features(),
                        split.train.num_classes());
  with.fit(split.train);
  cfg.cascade.enabled = false;
  core::MemhdModel without(cfg, split.train.num_features(),
                           split.train.num_classes());
  without.fit(split.train);
  const double delta =
      without.evaluate(split.test) - with.evaluate(split.test);
  EXPECT_LE(delta, 0.005);
}

TEST(CascadeModel, RefreshAfterOnlineUpdates) {
  // partial_fit that mutates (or extends) the AM must rebuild the searcher:
  // the model's own cascade predictions stay consistent with a fresh
  // exhaustive model of the same state.
  const auto split = testing::tiny_multimodal();
  const auto cfg = cascade_config(CascadeMode::kExact);
  core::MemhdModel model(cfg, split.train.num_features(),
                         split.train.num_classes());
  model.fit(split.train);
  const auto* before = model.cascade();
  ASSERT_NE(before, nullptr);

  model.partial_fit(split.test.features(), split.test.labels());
  ASSERT_NE(model.cascade(), nullptr);
  // Exact contract must hold against the POST-update AM.
  common::BatchScorer fresh(model.am().binary());
  const auto encoded = model.encoder().encode_batch(split.test.features());
  std::vector<std::uint32_t> want, got;
  fresh.dot_argmax(std::span<const common::BitVector>(encoded), want);
  model.cascade()->dot_argmax(std::span<const common::BitVector>(encoded),
                              got);
  EXPECT_EQ(got, want);
}

TEST(CascadeModel, SerializeRoundTripsCascadeConfig) {
  const auto split = testing::tiny_multimodal();
  auto cfg = cascade_config(CascadeMode::kThreshold);
  cfg.cascade.sample_fraction = 0.375;
  cfg.cascade.shortlist = 9;
  cfg.cascade.early_exit_margin = 5;
  cfg.cascade.seed = 0xFEEDULL;
  core::MemhdModel model(cfg, split.train.num_features(),
                         split.train.num_classes());
  model.fit(split.train);

  const std::string path = temp_path("memhd_cascade.model");
  model.save(path);
  const core::MemhdModel loaded = core::MemhdModel::load(path);
  std::remove(path.c_str());

  const auto& c = loaded.config().cascade;
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.mode, CascadeMode::kThreshold);
  EXPECT_DOUBLE_EQ(c.sample_fraction, 0.375);
  EXPECT_EQ(c.shortlist, 9u);
  EXPECT_EQ(c.early_exit_margin, 5u);
  EXPECT_EQ(c.seed, 0xFEEDULL);
  // The searcher is rebuilt on load and re-derives the SAME prescreen
  // plane (word sampling is a pure function of the persisted config), so
  // threshold-mode answers round-trip bit-exactly too.
  ASSERT_NE(loaded.cascade(), nullptr);
  EXPECT_EQ(loaded.cascade()->sampled_words(),
            model.cascade()->sampled_words());
  EXPECT_EQ(loaded.predict_batch(split.test.features()),
            model.predict_batch(split.test.features()));
}

TEST(CascadeModel, DisabledConfigRoundTripsDisabled) {
  const auto split = testing::tiny_separable();
  auto cfg = cascade_config(CascadeMode::kExact);
  cfg.cascade.enabled = false;
  core::MemhdModel model(cfg, split.train.num_features(),
                         split.train.num_classes());
  model.fit(split.train);
  const std::string path = temp_path("memhd_nocascade.model");
  model.save(path);
  const core::MemhdModel loaded = core::MemhdModel::load(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.config().cascade.enabled);
  EXPECT_EQ(loaded.cascade(), nullptr);
}

TEST(CascadeApi, ClassifierKnobsReachTheModelAndSurviveSaveLoad) {
  const auto split = testing::tiny_multimodal();
  api::ModelOptions opts;
  opts.dim = 512;
  opts.columns = 24;
  opts.epochs = 2;
  opts.seed = 3;
  opts.cascade = true;
  opts.cascade_mode = CascadeMode::kExact;
  opts.cascade_sample_fraction = 0.5;
  opts.cascade_shortlist = 12;
  auto clf = api::make("memhd", split.train.num_features(),
                       split.train.num_classes(), opts);
  clf->fit(split.train);

  // predict == predict_batch per row (the registry-wide contract).
  const auto batch = clf->predict_batch(split.test.features());
  for (std::size_t i = 0; i < split.test.size(); ++i)
    ASSERT_EQ(clf->predict(split.test.sample(i)), batch[i]);

  const std::string path = temp_path("memhd_cascade_api.model");
  clf->save(path);
  const auto loaded = api::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded->predict_batch(split.test.features()), batch);
}

TEST(CascadeApi, HotSwapHammerWithShardedPrescreenPlanes) {
  // The satellite contract: per-shard pinned prescreen planes never tear a
  // batch. Cascade-enabled versions are swapped under live sharded traffic;
  // every response must be bit-equal to some published version's answer.
  const auto split = testing::tiny_multimodal(/*seed=*/53,
                                              /*train_per_class=*/50,
                                              /*test_per_class=*/20);
  api::ModelOptions opts;
  opts.dim = 256;
  opts.columns = 16;
  opts.epochs = 2;
  opts.seed = 7;
  opts.cascade = true;
  opts.cascade_mode = CascadeMode::kThreshold;
  opts.cascade_sample_fraction = 0.5;
  opts.cascade_shortlist = 8;
  auto model = api::make("memhd", split.train.num_features(),
                         split.train.num_classes(), opts);
  model->fit(split.train);

  auto store = std::make_shared<online::ModelStore>(std::move(model));
  store->partial_fit(split.test.features(), split.test.labels());
  const online::VersionId v1 = store->publish();
  store->partial_fit(split.train.features(), split.train.labels());
  const online::VersionId v2 = store->publish();
  const std::vector<online::VersionId> versions{0, v1, v2};

  const common::Matrix& probes = split.test.features();
  std::vector<std::vector<data::Label>> expected;
  for (const auto id : versions) {
    store->swap(id);
    expected.push_back(store->pin().model->predict_batch(probes));
  }

  api::BatchServerOptions options;
  options.max_batch = 16;
  options.shards = 2;
  options.shard_quantum = 4;
  api::BatchServer server(store, options);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      store->swap(versions[i++ % versions.size()]);
  });

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIters = 15;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t iter = 0; iter < kIters; ++iter) {
        for (std::size_t row = t; row < probes.rows(); row += kThreads) {
          const data::Label got = server.submit(probes.row(row)).get();
          bool known = false;
          for (std::size_t v = 0; v < versions.size(); ++v)
            known |= (expected[v][row] == got);
          if (!known) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true);
  swapper.join();
  server.drain();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a response matched NO version — a shard tore a batch across "
         "prescreen planes";
}

}  // namespace
}  // namespace memhd::search
