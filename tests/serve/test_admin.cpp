// The admin surface over real sockets: binary 0xB8 round trips, the HTTP
// GET /models inventory and POST /v1/swap, duplicate-name registration, the
// per-model version field in /stats, and an end-to-end hot swap where the
// answers served actually change after the swap.
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/registry.hpp"
#include "src/online/model_store.hpp"
#include "src/serve/client.hpp"
#include "src/serve/server.hpp"
#include "test_util.hpp"

namespace memhd::serve {
namespace {

struct Fixture {
  data::TrainTestSplit split;
  std::unique_ptr<api::Classifier> model;

  Fixture() : split(testing::tiny_multimodal(/*seed=*/47,
                                             /*train_per_class=*/40,
                                             /*test_per_class=*/20)) {
    api::ModelOptions opts;
    opts.dim = 256;
    opts.columns = 16;
    opts.epochs = 3;
    opts.seed = 11;
    model = api::make("memhd", split.train.num_features(),
                      split.train.num_classes(), opts);
    model->fit(split.train);
  }

  std::unique_ptr<api::Classifier> clone() const { return model->clone(); }

  /// A store whose v0 is the fixture model and v1 is a partial_fit child.
  std::shared_ptr<online::ModelStore> store_with_v1() const {
    auto store = std::make_shared<online::ModelStore>(clone());
    store->partial_fit(split.test.features(), split.test.labels());
    store->publish();
    return store;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

constexpr const char* kHost = "127.0.0.1";

TEST(ServeAdmin, DuplicateNamesAreTypedErrors) {
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  EXPECT_THROW(router.add_model("memhd", f.clone()), DuplicateModelError);
  EXPECT_THROW(router.add_store("memhd", f.store_with_v1()),
               DuplicateModelError);
  // The original registration is untouched by the failed ones.
  EXPECT_NE(router.model("memhd"), nullptr);
  EXPECT_EQ(router.model_names().size(), 1u);
  // And the error is also a plain invalid_argument for generic handlers.
  EXPECT_THROW(router.add_model("memhd", f.clone()), std::invalid_argument);
}

TEST(ServeAdmin, BinaryAdminRoundTrips) {
  const auto& f = fixture();
  Router router;
  auto store = f.store_with_v1();
  router.add_store("memhd", store);
  router.add_model("fixed", f.clone());
  Server server(router);
  server.start();
  Client client(kHost, server.port());

  // kList: inventory of both entries.
  AdminRequest list;
  list.op = AdminOp::kList;
  const AdminResponse inventory = client.admin(list);
  EXPECT_EQ(inventory.status, Status::kOk);
  EXPECT_NE(inventory.body.find("\"memhd\""), std::string::npos);
  EXPECT_NE(inventory.body.find("\"versioned\": true"), std::string::npos);
  EXPECT_NE(inventory.body.find("\"versioned\": false"), std::string::npos);

  // kSwap back to v0, then kRollback fails at the root.
  AdminRequest swap;
  swap.op = AdminOp::kSwap;
  swap.model = "memhd";
  swap.version = 0;
  const AdminResponse swapped = client.admin(swap);
  EXPECT_EQ(swapped.status, Status::kOk);
  EXPECT_EQ(swapped.version, 0u);
  EXPECT_EQ(store->current_version(), 0u);

  AdminRequest rollback;
  rollback.op = AdminOp::kRollback;
  rollback.model = "memhd";
  EXPECT_EQ(client.admin(rollback).status, Status::kMalformed);

  // Typed failures: unknown version, unknown model, non-versioned model.
  swap.version = 999;
  EXPECT_EQ(client.admin(swap).status, Status::kUnknownModel);
  swap.model = "nope";
  swap.version = 0;
  EXPECT_EQ(client.admin(swap).status, Status::kUnknownModel);
  swap.model = "fixed";
  EXPECT_EQ(client.admin(swap).status, Status::kMalformed);

  // Admin and predict frames interleave on one connection.
  const Response predict = client.predict("memhd", f.split.test.sample(0));
  EXPECT_EQ(predict.status, Status::kOk);
  EXPECT_EQ(client.admin(list).status, Status::kOk);

  server.request_stop();
  server.join();
}

TEST(ServeAdmin, HttpModelsAndSwap) {
  const auto& f = fixture();
  Router router;
  auto store = f.store_with_v1();
  router.add_store("memhd", store);
  Server server(router);
  server.start();

  const std::string models = http_exchange(
      kHost, server.port(),
      "GET /models HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(models.find("200"), std::string::npos);
  EXPECT_NE(models.find("\"current\": 1"), std::string::npos);
  EXPECT_NE(models.find("\"samples_trained\""), std::string::npos);

  // Swap to an explicit version.
  const std::string swapped = http_exchange(
      kHost, server.port(),
      "POST /v1/swap HTTP/1.1\r\nConnection: close\r\n"
      "Content-Length: 32\r\n\r\n"
      "{\"model\": \"memhd\", \"version\": 0}");
  EXPECT_NE(swapped.find("200"), std::string::npos);
  EXPECT_EQ(store->current_version(), 0u);

  // Omitted version = rollback; at the root that is a 400.
  const std::string at_root = http_exchange(
      kHost, server.port(),
      "POST /v1/swap HTTP/1.1\r\nConnection: close\r\n"
      "Content-Length: 18\r\n\r\n"
      "{\"model\": \"memhd\"}");
  EXPECT_NE(at_root.find("400"), std::string::npos);

  // Swap forward again via the null form (explicit null = rollback too),
  // after moving current to v1 so a rollback target exists.
  store->swap(1);
  const std::string rolled = http_exchange(
      kHost, server.port(),
      "POST /v1/swap HTTP/1.1\r\nConnection: close\r\n"
      "Content-Length: 35\r\n\r\n"
      "{\"model\": \"memhd\", \"version\": null}");
  EXPECT_NE(rolled.find("200"), std::string::npos);
  EXPECT_EQ(store->current_version(), 0u);

  // Malformed body: framing survives, request fails typed.
  const std::string bad = http_exchange(
      kHost, server.port(),
      "POST /v1/swap HTTP/1.1\r\nConnection: close\r\n"
      "Content-Length: 14\r\n\r\n"
      "{\"model\": 17}}");
  EXPECT_NE(bad.find("400"), std::string::npos);

  server.request_stop();
  server.join();
}

TEST(ServeAdmin, StatsCarryActiveVersion) {
  const auto& f = fixture();
  Router router;
  auto store = f.store_with_v1();
  router.add_store("memhd", store);
  Server server(router);
  server.start();

  std::string stats = http_exchange(
      kHost, server.port(), "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(stats.find("\"version\": 1"), std::string::npos);
  store->swap(0);
  stats = http_exchange(
      kHost, server.port(), "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(stats.find("\"version\": 0"), std::string::npos);

  server.request_stop();
  server.join();
}

TEST(ServeAdmin, HotSwapChangesServedAnswers) {
  // End-to-end: the same queries, served before and after a swap, must
  // match each version's direct predictions — the swap is actually visible
  // on the wire, not just in the store's bookkeeping.
  const auto& f = fixture();
  auto store = std::make_shared<online::ModelStore>(f.clone());
  // Train v1 far enough from v0 that the two disagree on the probe set.
  for (int pass = 0; pass < 3; ++pass)
    store->partial_fit(f.split.test.features(), f.split.test.labels());
  store->publish();
  store->swap(0);
  const auto v0_direct =
      store->pin().model->predict_batch(f.split.test.features());
  store->swap(1);
  const auto v1_direct =
      store->pin().model->predict_batch(f.split.test.features());
  store->swap(0);

  Router router;
  router.add_store("memhd", store);
  Server server(router);
  server.start();
  Client client(kHost, server.port());

  for (std::size_t i = 0; i < f.split.test.size(); ++i)
    EXPECT_EQ(client.predict("memhd", f.split.test.sample(i)).label,
              v0_direct[i])
        << "pre-swap query " << i;

  AdminRequest swap;
  swap.op = AdminOp::kSwap;
  swap.model = "memhd";
  swap.version = 1;
  ASSERT_EQ(client.admin(swap).status, Status::kOk);

  for (std::size_t i = 0; i < f.split.test.size(); ++i)
    EXPECT_EQ(client.predict("memhd", f.split.test.sample(i)).label,
              v1_direct[i])
        << "post-swap query " << i;

  server.request_stop();
  server.join();
}

}  // namespace
}  // namespace memhd::serve
