// Pure-parsing tests for the wire protocol: binary framing, HTTP/1.1
// framing, and the predict-JSON decoder — incremental feeds, round trips,
// and malformed-input rejection, all without a socket.
#include "src/serve/protocol.hpp"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace memhd::serve {
namespace {

Request sample_request() {
  Request request;
  request.model = "memhd";
  request.deadline_ms = 250;
  request.features = {0.0f, 1.5f, -2.25f, 3.75e-3f};
  return request;
}

TEST(ServeProtocol, BinaryRequestRoundTrip) {
  const Request request = sample_request();
  std::vector<std::uint8_t> wire;
  append_request(wire, request);

  Request decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_request(wire.data(), wire.size(), decoded, consumed),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.model, request.model);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  ASSERT_EQ(decoded.features.size(), request.features.size());
  for (std::size_t i = 0; i < request.features.size(); ++i)
    EXPECT_EQ(decoded.features[i], request.features[i]) << "feature " << i;
}

TEST(ServeProtocol, BinaryRequestIncrementalFeed) {
  std::vector<std::uint8_t> wire;
  append_request(wire, sample_request());

  // Every strict prefix is kNeedMore, never kBad, never a frame.
  Request decoded;
  std::size_t consumed = 0;
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_EQ(parse_request(wire.data(), len, decoded, consumed),
              ParseResult::kNeedMore)
        << "prefix length " << len;

  // Two pipelined frames parse back to back.
  std::vector<std::uint8_t> two = wire;
  append_request(two, sample_request());
  ASSERT_EQ(parse_request(two.data(), two.size(), decoded, consumed),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, wire.size());
  ASSERT_EQ(parse_request(two.data() + consumed, two.size() - consumed,
                          decoded, consumed),
            ParseResult::kFrame);
}

TEST(ServeProtocol, BinaryRequestMalformedRejected) {
  std::vector<std::uint8_t> wire;
  append_request(wire, sample_request());
  Request decoded;
  std::size_t consumed = 0;

  {  // wrong magic
    auto bad = wire;
    bad[0] = 0x42;
    EXPECT_EQ(parse_request(bad.data(), bad.size(), decoded, consumed),
              ParseResult::kBad);
  }
  {  // wrong version
    auto bad = wire;
    bad[1] = 9;
    EXPECT_EQ(parse_request(bad.data(), bad.size(), decoded, consumed),
              ParseResult::kBad);
  }
  {  // body_len inconsistent with model_len/num_features
    auto bad = wire;
    bad[2] = static_cast<std::uint8_t>(bad[2] - 1);
    EXPECT_EQ(parse_request(bad.data(), bad.size(), decoded, consumed),
              ParseResult::kBad);
  }
  {  // body_len larger than the buffered bytes just waits for more
    auto bad = wire;
    bad[2] = static_cast<std::uint8_t>(bad[2] + 1);
    EXPECT_EQ(parse_request(bad.data(), bad.size(), decoded, consumed),
              ParseResult::kNeedMore);
  }
  {  // oversize body_len is malformed, not a buffering request
    auto bad = wire;
    const std::uint32_t huge = kMaxBodyBytes + 1;
    std::memcpy(bad.data() + 2, &huge, 4);
    EXPECT_EQ(parse_request(bad.data(), bad.size(), decoded, consumed),
              ParseResult::kBad);
  }
}

TEST(ServeProtocol, BinaryResponseRoundTrip) {
  std::vector<std::uint8_t> wire;
  append_response(wire, Status::kOk, 7);
  append_response(wire, Status::kQueueFull, 0);
  ASSERT_EQ(wire.size(), 2 * kResponseBytes);

  Response response;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_response(wire.data(), wire.size(), response, consumed),
            ParseResult::kFrame);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.label, 7);
  ASSERT_EQ(parse_response(wire.data() + consumed, wire.size() - consumed,
                           response, consumed),
            ParseResult::kFrame);
  EXPECT_EQ(response.status, Status::kQueueFull);

  for (std::size_t len = 0; len < kResponseBytes; ++len)
    EXPECT_EQ(parse_response(wire.data(), len, response, consumed),
              ParseResult::kNeedMore);
}

TEST(ServeProtocol, HttpRequestParsesHeadersAndBody) {
  const std::string raw =
      "POST /v1/predict HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "content-length: 16\r\n"
      "\r\n"
      "{\"features\":[1]}";
  HttpRequest request;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_request(
                reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size(),
                request, consumed),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/predict");
  EXPECT_EQ(request.body, "{\"features\":[1]}");
  EXPECT_TRUE(request.keep_alive);

  // Incremental: headers without the full body is kNeedMore.
  EXPECT_EQ(parse_http_request(
                reinterpret_cast<const std::uint8_t*>(raw.data()),
                raw.size() - 4, request, consumed),
            ParseResult::kNeedMore);
}

TEST(ServeProtocol, HttpConnectionSemantics) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string close_it =
      "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(parse_http_request(
                reinterpret_cast<const std::uint8_t*>(close_it.data()),
                close_it.size(), request, consumed),
            ParseResult::kFrame);
  EXPECT_FALSE(request.keep_alive);

  const std::string http10 = "GET /stats HTTP/1.0\r\n\r\n";
  ASSERT_EQ(parse_http_request(
                reinterpret_cast<const std::uint8_t*>(http10.data()),
                http10.size(), request, consumed),
            ParseResult::kFrame);
  EXPECT_FALSE(request.keep_alive) << "HTTP/1.0 defaults to close";
}

TEST(ServeProtocol, HttpMalformedRejected) {
  HttpRequest request;
  std::size_t consumed = 0;
  const auto parse = [&](const std::string& raw) {
    return parse_http_request(
        reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size(),
        request, consumed);
  };
  EXPECT_EQ(parse("NONSENSE\r\n\r\n"), ParseResult::kBad);
  EXPECT_EQ(parse("GET /x SPDY/3\r\n\r\n"), ParseResult::kBad);
  EXPECT_EQ(parse("GET /x HTTP/1.1\r\nbroken header line\r\n\r\n"),
            ParseResult::kBad);
  EXPECT_EQ(parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ParseResult::kBad);
  EXPECT_EQ(parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ParseResult::kBad);
}

TEST(ServeProtocol, PredictJsonDecodes) {
  Request request;
  ASSERT_TRUE(parse_predict_json(
      R"({"model": "memhd", "deadline_ms": 50, "features": [1, 2.5, -3e-1]})",
      request));
  EXPECT_EQ(request.model, "memhd");
  EXPECT_EQ(request.deadline_ms, 50u);
  ASSERT_EQ(request.features.size(), 3u);
  EXPECT_FLOAT_EQ(request.features[1], 2.5f);
  EXPECT_FLOAT_EQ(request.features[2], -0.3f);

  // Key order free, unknown keys (nested!) skipped, empty feature list ok.
  ASSERT_TRUE(parse_predict_json(
      R"({"extra": {"nested": [1, {"x": "y"}]}, "features": [], "model": "m"})",
      request));
  EXPECT_EQ(request.model, "m");
  EXPECT_TRUE(request.features.empty());
  EXPECT_EQ(request.deadline_ms, 0u);
}

TEST(ServeProtocol, PredictJsonRejectsMalformed) {
  Request request;
  EXPECT_FALSE(parse_predict_json("", request));
  EXPECT_FALSE(parse_predict_json("not json", request));
  EXPECT_FALSE(parse_predict_json("{}", request)) << "features required";
  EXPECT_FALSE(parse_predict_json(R"({"model": "m"})", request));
  EXPECT_FALSE(parse_predict_json(R"({"features": [1,]})", request));
  EXPECT_FALSE(parse_predict_json(R"({"features": ["x"]})", request));
  EXPECT_FALSE(parse_predict_json(R"({"features": [1] trailing)", request));
  EXPECT_FALSE(parse_predict_json(R"({"features": [1]} garbage)", request));
  EXPECT_FALSE(parse_predict_json(R"({"deadline_ms": -5, "features": [1]})",
                                  request));
}

TEST(ServeProtocol, StatusMapping) {
  EXPECT_EQ(http_status_code(Status::kOk), 200);
  EXPECT_EQ(http_status_code(Status::kQueueFull), 429);
  EXPECT_EQ(http_status_code(Status::kDeadlineExceeded), 504);
  EXPECT_EQ(http_status_code(Status::kMalformed), 400);
  EXPECT_EQ(http_status_code(Status::kUnknownModel), 404);
  EXPECT_EQ(http_status_code(Status::kShuttingDown), 503);
  EXPECT_EQ(http_status_code(Status::kInternalError), 500);
  EXPECT_STREQ(status_name(Status::kQueueFull), "queue-full");
  EXPECT_TRUE(looks_like_http('P'));
  EXPECT_TRUE(looks_like_http('G'));
  EXPECT_FALSE(looks_like_http(kFrameMagic));
}

TEST(ServeProtocol, HttpResponseEncodes) {
  std::vector<std::uint8_t> wire;
  append_http_response(wire, 429, "{\"error\": \"queue-full\"}", true);
  const std::string text(wire.begin(), wire.end());
  EXPECT_NE(text.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(text.find("Content-Length: 23\r\n"), std::string::npos);
  EXPECT_NE(text.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\n{\"error\": \"queue-full\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace memhd::serve
