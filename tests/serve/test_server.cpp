// End-to-end ingress tests over real sockets on loopback: both protocols,
// the overload statuses (429/NACK, deadline timeout), connection-level
// robustness (malformed frames, stalled clients), and the graceful-drain
// contract under SIGTERM mid-load.
#include "src/serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/registry.hpp"
#include "src/serve/client.hpp"
#include "test_util.hpp"

namespace memhd::serve {
namespace {

struct Fixture {
  data::TrainTestSplit split;
  std::unique_ptr<api::Classifier> model;
  std::vector<data::Label> direct;

  Fixture() : split(testing::tiny_multimodal(/*seed=*/41,
                                             /*train_per_class=*/40,
                                             /*test_per_class=*/20)) {
    api::ModelOptions opts;
    opts.dim = 256;
    opts.columns = 16;
    opts.epochs = 3;
    opts.seed = 5;
    model = api::make("memhd", split.train.num_features(),
                      split.train.num_classes(), opts);
    model->fit(split.train);
    direct = model->predict_batch(split.test.features());
  }

  /// Fresh owning copy for a Router (bit-exact via the tagged format).
  std::unique_ptr<api::Classifier> clone() const {
    std::stringstream stream;
    api::save(*model, stream);
    return api::load(stream);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

constexpr const char* kHost = "127.0.0.1";

TEST(ServeServer, BinaryEndToEndMatchesDirectBatch) {
  const auto& f = fixture();
  Router router;
  api::BatchServerOptions server_opts;
  server_opts.max_batch = 16;
  server_opts.shards = 2;
  server_opts.shard_quantum = 4;
  router.add_model("memhd", f.clone(), server_opts);

  Server server(router);
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client(kHost, server.port());
  for (std::size_t i = 0; i < f.split.test.size(); ++i) {
    const Response response =
        client.predict("memhd", f.split.test.sample(i));
    EXPECT_EQ(response.status, Status::kOk) << "query " << i;
    EXPECT_EQ(response.label, f.direct[i]) << "query " << i;
  }

  // Pipelining: many frames in flight on one connection, responses in
  // request order.
  const std::size_t burst = std::min<std::size_t>(32, f.split.test.size());
  for (std::size_t i = 0; i < burst; ++i)
    client.send("memhd", f.split.test.sample(i));
  for (std::size_t i = 0; i < burst; ++i) {
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.label, f.direct[i]) << "pipelined query " << i;
  }

  server.request_stop();
  server.join();
  EXPECT_FALSE(server.running());
}

TEST(ServeServer, PipelineDeeperThanInFlightCapFullyAnswered) {
  // Regression: frames buffered past the per-connection in-flight cap were
  // only re-parsed on a read event. Once the kernel socket buffer was
  // drained no event ever fired again, so the pipeline's tail sat unparsed
  // in rbuf_ until the connection was evicted as read-stalled. The loop now
  // re-runs process_buffered every tick as completions free slots.
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  ServerOptions options;
  options.limits.max_in_flight = 4;
  // Tight enough that the parked tail would hit the read-stall eviction
  // well within the test if it were still being dropped.
  options.limits.read_timeout = std::chrono::milliseconds(250);
  Server server(router, options);
  server.start();

  Client client(kHost, server.port());
  const std::size_t burst = std::min<std::size_t>(32, f.split.test.size());
  for (std::size_t i = 0; i < burst; ++i)
    client.send("memhd", f.split.test.sample(i));
  for (std::size_t i = 0; i < burst; ++i) {
    Response response;
    ASSERT_TRUE(client.receive(response)) << "pipelined query " << i;
    EXPECT_EQ(response.status, Status::kOk) << "pipelined query " << i;
    EXPECT_EQ(response.label, f.direct[i]) << "pipelined query " << i;
  }
  EXPECT_EQ(server.stats().evicted_stalled, 0u);
}

TEST(ServeServer, DrainAnswersBufferedTailBeyondInFlightCap) {
  // Same parked-tail scenario, but the drain path: frames buffered past the
  // in-flight cap must be NACKed with kShuttingDown during the drain, not
  // dropped when the connection is torn down.
  const auto& f = fixture();
  Router router;
  api::BatchServerOptions server_opts;
  server_opts.max_batch = 1024;
  server_opts.max_delay = std::chrono::seconds(5);  // park admitted work
  router.add_model("memhd", f.clone(), server_opts);
  ServerOptions options;
  options.limits.max_in_flight = 2;
  Server server(router, options);
  server.start();

  // One write for the whole burst so the server's first read buffers every
  // frame before the cap stops further socket reads.
  Client client(kHost, server.port());
  constexpr std::size_t kBurst = 16;
  Request request;
  request.model = "memhd";
  const auto sample = f.split.test.sample(0);
  request.features.assign(sample.begin(), sample.end());
  std::vector<std::uint8_t> wire;
  for (std::size_t i = 0; i < kBurst; ++i) append_request(wire, request);
  client.send_raw(wire.data(), wire.size());

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_stop();

  std::size_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    Response response;
    ASSERT_TRUE(client.receive(response)) << "response " << i;
    if (response.status == Status::kOk) {
      ++ok;
      EXPECT_EQ(response.label, f.direct[0]);
    } else {
      EXPECT_EQ(response.status, Status::kShuttingDown) << "response " << i;
      ++shed;
    }
  }
  server.join();
  // The two admitted requests score; every buffered one is NACKed.
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, kBurst - 2u);
}

TEST(ServeServer, UnknownModelAndWrongFeatureLength) {
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  Server server(router);
  server.start();

  Client client(kHost, server.port());
  const Response unknown =
      client.predict("nope", f.split.test.sample(0));
  EXPECT_EQ(unknown.status, Status::kUnknownModel);

  const std::vector<float> wrong(f.model->num_features() + 3, 0.0f);
  const Response malformed = client.predict("memhd", wrong);
  EXPECT_EQ(malformed.status, Status::kMalformed);

  // The connection and the listener both survived typed failures.
  const Response ok = client.predict("memhd", f.split.test.sample(0));
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_EQ(ok.label, f.direct[0]);
}

TEST(ServeServer, HttpPredictAndStatsEndpoint) {
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  Server server(router);
  server.start();

  // Build the predict body from sample 0.
  std::string body = "{\"model\": \"memhd\", \"features\": [";
  const auto sample = f.split.test.sample(0);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (i) body += ", ";
    body += std::to_string(sample[i]);
  }
  body += "]}";
  const std::string request =
      "POST /v1/predict HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  const std::string reply = http_exchange(kHost, server.port(), request);
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("{\"label\": " + std::to_string(f.direct[0]) + "}"),
            std::string::npos)
      << reply;

  // Malformed JSON only fails the request (400), with valid HTTP framing.
  const std::string bad =
      "POST /v1/predict HTTP/1.1\r\nConnection: close\r\n"
      "Content-Length: 9\r\n\r\nnot json!";
  EXPECT_NE(http_exchange(kHost, server.port(), bad)
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);

  const std::string stats = http_exchange(
      kHost, server.port(), "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(stats.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(stats.find("\"ingress\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"memhd\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_depth_peak\""), std::string::npos) << stats;

  const std::string missing = http_exchange(
      kHost, server.port(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST(ServeServer, OverloadNacksWithQueueFull) {
  const auto& f = fixture();
  Router router;
  api::BatchServerOptions server_opts;
  // A batching window long enough that a burst cannot drain mid-test, and
  // a 1-deep queue: everything after the first pipelined frame must NACK.
  server_opts.max_batch = 1024;
  server_opts.max_delay = std::chrono::milliseconds(150);
  server_opts.max_pending = 1;
  router.add_model("memhd", f.clone(), server_opts);
  Server server(router);
  server.start();

  Client client(kHost, server.port());
  constexpr std::size_t kBurst = 6;
  for (std::size_t i = 0; i < kBurst; ++i)
    client.send("memhd", f.split.test.sample(0));

  std::size_t ok = 0, rejected = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    Response response;
    ASSERT_TRUE(client.receive(response)) << "response " << i;
    if (response.status == Status::kOk) {
      ++ok;
      EXPECT_EQ(response.label, f.direct[0]);
    } else {
      EXPECT_EQ(response.status, Status::kQueueFull) << "response " << i;
      ++rejected;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u) << "a 1-deep queue must shed a 6-frame burst";
  EXPECT_EQ(ok + rejected, kBurst);

  // NACKs surface in the model's stats.
  const std::string stats = http_exchange(
      kHost, server.port(), "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(stats.find("\"rejected\": 0"), std::string::npos) << stats;
}

TEST(ServeServer, DeadlineBudgetTimesOutInsteadOfScoring) {
  const auto& f = fixture();
  Router router;
  api::BatchServerOptions server_opts;
  server_opts.max_batch = 1024;  // only the delay window cuts
  server_opts.max_delay = std::chrono::milliseconds(80);
  router.add_model("memhd", f.clone(), server_opts);
  Server server(router);
  server.start();

  // 1 ms budget inside an 80 ms batching window: expired at the cut.
  Client client(kHost, server.port());
  const Response timed_out =
      client.predict("memhd", f.split.test.sample(0), /*deadline_ms=*/1);
  EXPECT_EQ(timed_out.status, Status::kDeadlineExceeded);

  // A generous budget rides the same window and still scores.
  const Response ok =
      client.predict("memhd", f.split.test.sample(1), /*deadline_ms=*/5000);
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_EQ(ok.label, f.direct[1]);
}

TEST(ServeServer, MalformedFrameNackedWithoutKillingListener) {
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  Server server(router);
  server.start();

  {  // Bad version byte: NACK + close, listener untouched.
    Client bad(kHost, server.port());
    const std::uint8_t garbage[] = {kFrameMagic, 9, 1, 2, 3, 4};
    bad.send_raw(garbage, sizeof(garbage));
    Response response;
    ASSERT_TRUE(bad.receive(response));
    EXPECT_EQ(response.status, Status::kMalformed);
    EXPECT_FALSE(bad.receive(response)) << "connection must close after NACK";
  }
  {  // Bytes matching neither protocol: dropped without a response.
    Client bad(kHost, server.port());
    const std::uint8_t garbage[] = {0x00, 0xFF, 0x13};
    bad.send_raw(garbage, sizeof(garbage));
    Response response;
    EXPECT_FALSE(bad.receive(response));
  }

  Client good(kHost, server.port());
  const Response response = good.predict("memhd", f.split.test.sample(0));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.label, f.direct[0]);
  EXPECT_GE(server.stats().malformed, 2u);
}

TEST(ServeServer, StalledMidFrameClientIsEvicted) {
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  ServerOptions options;
  options.limits.read_timeout = std::chrono::milliseconds(60);
  Server server(router, options);
  server.start();

  Client stalled(kHost, server.port());
  const std::uint8_t partial[] = {kFrameMagic, kProtocolVersion, 40};
  stalled.send_raw(partial, sizeof(partial));  // never completes the frame
  Response response;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(stalled.receive(response))
      << "stalled client must be evicted, not parked forever";
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  EXPECT_GE(server.stats().evicted_stalled, 1u);
}

TEST(ServeServer, SigtermDrainsGracefullyMidLoad) {
  // The acceptance drain test: SIGTERM lands mid-load; every response the
  // clients see is a label or a typed error (never garbage, never a
  // protocol break), the server stops within its budget, and new
  // connections are refused afterwards.
  const auto& f = fixture();
  Router router;
  api::BatchServerOptions server_opts;
  server_opts.max_batch = 8;
  server_opts.max_delay = std::chrono::milliseconds(1);
  server_opts.max_pending = 64;
  router.add_model("memhd", f.clone(), server_opts);
  Server server(router);
  Server::install_signal_handlers(&server);
  server.start();
  const std::uint16_t port = server.port();

  constexpr std::size_t kClients = 3;
  std::atomic<std::uint64_t> sent{0}, received{0}, ok{0}, nacked{0};
  std::atomic<std::uint64_t> bad_label{0}, bad_status{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      (void)c;
      try {
        Client client(kHost, port);
        std::deque<std::size_t> in_flight;  // responses arrive in this order
        for (std::size_t i = 0;; i = (i + 1) % f.split.test.size()) {
          client.send("memhd", f.split.test.sample(i), /*deadline_ms=*/500);
          ++sent;
          in_flight.push_back(i);
          if (in_flight.size() < 4) continue;  // keep a small pipeline going
          Response response;
          if (!client.receive(response)) return;  // drained: connection done
          const std::size_t query = in_flight.front();
          in_flight.pop_front();
          ++received;
          switch (response.status) {
            case Status::kOk:
              ++ok;
              if (response.label != f.direct[query]) ++bad_label;
              break;
            case Status::kQueueFull:
            case Status::kDeadlineExceeded:
            case Status::kShuttingDown:
              ++nacked;
              break;
            default:
              ++bad_status;
              break;
          }
        }
      } catch (const std::exception&) {
        // connect/write racing the drain is fine; anything the client DID
        // receive was already validated above.
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(std::raise(SIGTERM), 0);
  for (auto& thread : clients) thread.join();
  server.join();
  Server::install_signal_handlers(nullptr);

  EXPECT_FALSE(server.running());
  EXPECT_GT(received.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(bad_status.load(), 0u)
      << "drain must only ever answer with labels or typed errors";
  EXPECT_EQ(bad_label.load(), 0u);

  // The listener is gone: new connections are refused.
  EXPECT_THROW(Client(kHost, port), std::runtime_error);
}

TEST(ServeServer, PortReadableWhileRunBindsOnAnotherThread) {
  // Regression (thread-safety audit): run() binds the ephemeral port on its
  // own thread while the caller polls port() — port_ was a plain uint16_t,
  // an honest data race even though the torn value was "benign" on x86.
  // Now atomic; this test exercises the cross-thread publish/poll pattern
  // and runs under the full-suite TSan CI job, which fails on the old code.
  const auto& f = fixture();
  Router router;
  router.add_model("memhd", f.clone());
  Server server(router);
  std::thread runner([&] { server.run(); });

  std::uint16_t port = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((port = server.port()) == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  ASSERT_GT(port, 0) << "run() never published the bound port";

  // The published port is real: a request round-trips on it.
  Client client(kHost, port);
  const Response response = client.predict("memhd", f.split.test.sample(0));
  EXPECT_EQ(response.status, Status::kOk);

  server.request_stop();
  runner.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace memhd::serve
