// Compile-level test: the umbrella header must pull in the whole public
// API without conflicts, and the headline types must be usable from it.
#include "src/memhd.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, CoreTypesAreVisible) {
  memhd::core::MemhdConfig cfg;
  EXPECT_EQ(cfg.dim, 128u);
  EXPECT_EQ(cfg.columns, 128u);

  memhd::common::Rng rng(1);
  const auto hv = memhd::common::BitVector::random(64, rng);
  EXPECT_EQ(hv.size(), 64u);

  const auto mapping = memhd::imc::map_memhd_model(
      784, 128, 128, memhd::imc::ArrayGeometry{128, 128});
  EXPECT_EQ(mapping.total_cycles(), 8u);

  memhd::core::MemoryParams p;
  p.num_features = 784;
  p.dim = 128;
  p.num_classes = 10;
  p.columns = 128;
  const auto mem =
      memhd::core::memory_requirement(memhd::core::ModelKind::kMemhd, p);
  EXPECT_GT(mem.total_bits(), 0u);
}

}  // namespace
