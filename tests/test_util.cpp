#include "test_util.hpp"

#include "src/common/rng.hpp"

namespace memhd::testing {

data::TrainTestSplit tiny_multimodal(std::uint64_t seed,
                                     std::size_t train_per_class,
                                     std::size_t test_per_class) {
  data::SyntheticConfig cfg;
  cfg.name = "tiny-multimodal";
  cfg.num_classes = 4;
  cfg.num_features = 64;
  cfg.latent_dim = 8;
  cfg.modes_per_class = 3;
  cfg.class_separation = 5.0;
  cfg.mode_spread = 3.0;
  cfg.within_mode_stddev = 0.8;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = test_per_class;
  common::Rng rng(seed);
  return data::generate_synthetic(cfg, rng);
}

data::TrainTestSplit tiny_hard_multimodal(std::uint64_t seed,
                                          std::size_t train_per_class,
                                          std::size_t test_per_class) {
  data::SyntheticConfig cfg;
  cfg.name = "tiny-hard-multimodal";
  cfg.num_classes = 4;
  cfg.num_features = 64;
  cfg.latent_dim = 10;
  cfg.modes_per_class = 4;
  cfg.class_separation = 1.2;   // centers nearly coincide ...
  cfg.mode_spread = 4.5;        // ... while modes scatter far
  cfg.within_mode_stddev = 0.7;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = test_per_class;
  common::Rng rng(seed);
  return data::generate_synthetic(cfg, rng);
}

data::TrainTestSplit tiny_separable(std::uint64_t seed) {
  data::SyntheticConfig cfg;
  cfg.name = "tiny-separable";
  cfg.num_classes = 3;
  cfg.num_features = 32;
  cfg.latent_dim = 6;
  cfg.modes_per_class = 1;
  cfg.class_separation = 8.0;
  cfg.mode_spread = 0.5;
  cfg.within_mode_stddev = 0.5;
  cfg.train_per_class = 40;
  cfg.test_per_class = 20;
  common::Rng rng(seed);
  return data::generate_synthetic(cfg, rng);
}

hdc::EncodedDataset random_encoded(std::size_t n, std::size_t dim,
                                   std::size_t num_classes,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  hdc::EncodedDataset ds;
  ds.dim = dim;
  ds.num_classes = num_classes;
  ds.hypervectors.reserve(n);
  ds.labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.hypervectors.push_back(common::BitVector::random(dim, rng));
    ds.labels.push_back(static_cast<data::Label>(i % num_classes));
  }
  return ds;
}

hdc::EncodedDataset clustered_encoded(std::size_t per_class, std::size_t dim,
                                      std::size_t num_classes,
                                      std::size_t modes,
                                      std::size_t noise_bits,
                                      std::uint64_t seed) {
  common::Rng rng(seed);
  hdc::EncodedDataset ds;
  ds.dim = dim;
  ds.num_classes = num_classes;

  std::vector<common::BitVector> prototypes;
  prototypes.reserve(num_classes * modes);
  for (std::size_t c = 0; c < num_classes * modes; ++c)
    prototypes.push_back(common::BitVector::random(dim, rng));

  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t mode = rng.uniform_index(modes);
      common::BitVector hv = prototypes[c * modes + mode];
      for (std::size_t b = 0; b < noise_bits; ++b)
        hv.flip(rng.uniform_index(dim));
      ds.hypervectors.push_back(std::move(hv));
      ds.labels.push_back(static_cast<data::Label>(c));
    }
  }
  return ds;
}

}  // namespace memhd::testing
