// Shared fixtures: small, fast synthetic workloads for unit tests.
#pragma once

#include <cstdint>

#include "src/data/dataset.hpp"
#include "src/data/synthetic.hpp"
#include "src/hdc/encoded_dataset.hpp"

namespace memhd::testing {

/// Tiny, well-separated multi-modal task: 4 classes x 3 modes, 64 features.
/// Fast enough for per-test generation; hard enough that multi-centroid
/// beats single-centroid.
data::TrainTestSplit tiny_multimodal(std::uint64_t seed = 7,
                                     std::size_t train_per_class = 60,
                                     std::size_t test_per_class = 30);

/// Unimodal, trivially separable 3-class task (for "learns at all" floors).
data::TrainTestSplit tiny_separable(std::uint64_t seed = 11);

/// Hard multi-modal task: class centers nearly coincide while each class's
/// modes are far apart, so a class is a union of scattered clusters. A
/// single averaged class vector collapses toward the shared center (near
/// chance); per-mode centroids separate cleanly. This is the regime that
/// motivates the multi-centroid AM.
data::TrainTestSplit tiny_hard_multimodal(std::uint64_t seed = 7,
                                          std::size_t train_per_class = 100,
                                          std::size_t test_per_class = 50);

/// Random encoded dataset with the given shape (labels uniform).
hdc::EncodedDataset random_encoded(std::size_t n, std::size_t dim,
                                   std::size_t num_classes,
                                   std::uint64_t seed = 3);

/// Clustered encoded dataset: per class, `modes` random prototype HVs;
/// samples are prototypes with `noise_bits` random flips. The canonical
/// input for initializer / QAT tests (no float encoder involved).
hdc::EncodedDataset clustered_encoded(std::size_t per_class, std::size_t dim,
                                      std::size_t num_classes,
                                      std::size_t modes,
                                      std::size_t noise_bits,
                                      std::uint64_t seed = 5);

}  // namespace memhd::testing
