#!/usr/bin/env python3
"""Gate bench JSON output against a checked-in baseline.

Usage:
    tools/check_bench_regression.py CURRENT_JSON [--baseline-dir DIR]
        [--threshold 0.20] [--serve-factor 3.0] [--swap-factor 5.0]
        [--update | --write-baseline]

Three record shapes are understood, keyed on the "bench" field:

* micro-kernel records (no "bench" field, default): per-kernel throughput
  gating, described below;
* serve records ("bench": "serve", produced by bench_serve): overload-safety
  gating of the TCP ingress tier. Machine-independent checks always run —
  the 2x-capacity phase MUST show a nonzero reject rate (a zero means
  admission control stopped shedding) and the 0.5x phase must stay
  essentially reject-free. Latency is gated against
  bench/baselines/BENCH_serve.json when present: each phase's p99, scaled
  by the capacity ratio between the two machines (queueing delay moves
  inversely with throughput), must stay within --serve-factor of the
  baseline p99. A missing serve baseline skips the latency gate with a
  notice (commit one with --update);
* cascade records ("bench": "cascade", produced by bench_cascade): the
  coarse-to-fine search cascade. Machine-independent checks always run —
  the workload is fully seeded, so every rate below is deterministic per
  build: exact mode must report exact_identical at every plane size (the
  margin-bound contract), the threshold shortlist must keep hit_rate >= 0.99
  at every size, exact-mode fallbacks must stay <= 5%, stage-2 rescoring at
  the largest size must touch <= 2% of rows (the pruning claim), and the
  fitted-model accuracy delta must stay <= 0.5%. Speedups are within-run
  ratios (cascade vs. exhaustive on the same host), so they transfer across
  machines: against bench/baselines/BENCH_cascade.json (when present) the
  largest size's threshold_speedup may not drop more than --threshold below
  baseline;
* online records ("bench": "online", produced by bench_online): the cost of
  training and hot-swapping while serving. Machine-independent: served p99
  with a thread swapping versions continuously must stay within
  --swap-factor of the same run's no-swap p99 (pin-at-batch-cut claims a
  swap costs a context rebuild, not a stall). Against
  bench/baselines/BENCH_online.json (when present), partial_fit samples/sec
  may not drop more than --threshold after normalizing by the
  anchor_queries_per_sec ratio between the two machines, and the COW
  clone/publish costs may not grow past --swap-factor x baseline
  (normalized the same way).

--write-baseline (alias of --update; see below) rewrites the matching
baseline file from CURRENT_JSON and reports PASS — the first-run path for a
freshly added bench.

The micro-kernel bench records absolute throughput, which depends on both
the dispatched kernel backend (see src/common/kernels/README.md:
"portable-tiled", "avx2", "avx512-vpopcntdq", "neon") and the host CPU.
Baselines are stored per backend under
bench/baselines/BENCH_micro_kernels.<kernel>.json, and raw queries/sec are
additionally normalized by the scalar path's speed ratio between the two
runs — the scalar loops are untouched reference code, so their ratio
measures how fast this runner is relative to the baseline machine, and a
batch-kernel regression shows up even on a slower or faster host.

The gate:
  * FAILS when any section's normalized batch queries/sec drops more than
    --threshold (default 20%) below the same-kernel baseline, or when any
    section reports bit_identical = false;
  * FAILS machine-independently (no baseline needed) when the encode_remat
    section's D=1M resident-bytes contrast drops below 100x: the
    rematerialized encoder plane must stay seed-only while the materialized
    equivalent scales with f x D;
  * PASSES with a notice when no baseline exists for the current backend
    (first run on new hardware or a freshly added backend — commit one with
    --update) instead of misapplying another backend's numbers, and skips
    with a notice any section the current run measures but the baseline
    file has no entry for (a freshly added bench section — re-baseline to
    gate it);
  * skips with a notice any section whose recorded per-section "backend"
    differs between the current run and the baseline (sections record the
    backend active while they were measured).

--update rewrites the baseline for the current kernel from CURRENT_JSON
(use after an intentional perf change, then commit the file). Committed
baselines are conservative floors, not typical numbers: take the
per-section minimum batch q/s over several runs (median scalar q/s, which
anchors the normalization) and shave ~15% so shared-runner noise does not
trip the -20% gate; the bit-identity checks stay exact regardless.
"""

import argparse
import json
import pathlib
import sys

BATCH_KEY = "batch_queries_per_sec"
SCALAR_KEY = "scalar_queries_per_sec"


def load(path):
    with open(path) as f:
        return json.load(f)


def sections(record):
    return {k: v for k, v in record.items()
            if isinstance(v, dict) and BATCH_KEY in v}


SERVE_PHASES = ("load_0.5x", "load_1x", "load_2x")


def check_serve(current, args):
    """Gate a bench_serve record: overload must shed, p99 must stay bounded."""
    failures = []
    capacity = current.get("capacity_qps", 0.0)
    print(f"serve ingress: capacity {capacity:.0f} q/s, "
          f"max_pending {current.get('max_pending', '?')}")
    for phase in SERVE_PHASES:
        if phase not in current:
            failures.append(f"{phase}: phase missing from current run")
    if failures:
        print("\nFAIL (serve):")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    # Machine-independent properties of the admission-control design.
    if current["load_2x"].get("reject_rate", 0.0) <= 0.0:
        failures.append(
            "load_2x: reject_rate is 0 at 2x capacity — the bounded queue "
            "is not shedding overload")
    if current["load_0.5x"].get("reject_rate", 0.0) > 0.10:
        failures.append(
            f"load_0.5x: reject_rate "
            f"{current['load_0.5x']['reject_rate']:.2%} at half capacity — "
            "underload should be essentially reject-free")

    baseline_path = pathlib.Path(args.baseline_dir) / "BENCH_serve.json"
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {baseline_path}")
    elif not baseline_path.exists():
        print(f"NOTICE: no serve baseline ({baseline_path} missing); "
              f"latency gate skipped. Create one with --update.")
    else:
        baseline = load(baseline_path)
        base_capacity = baseline.get("capacity_qps", 0.0)
        # Queueing delay scales inversely with throughput: a machine at
        # half the baseline capacity legitimately doubles every p99.
        speed = capacity / base_capacity if base_capacity > 0 else 1.0
        print(f"runner speed vs baseline machine (serve capacity): "
              f"{speed:.2f}x")
        for phase in SERVE_PHASES:
            if phase not in baseline:
                print(f"NOTICE: no baseline entry for '{phase}'; skipped.")
                continue
            base_p99 = baseline[phase].get("p99_ms", 0.0)
            now_p99 = current[phase].get("p99_ms", 0.0)
            normalized = now_p99 * speed
            limit = base_p99 * args.serve_factor
            status = "OK"
            if base_p99 > 0 and normalized > limit:
                status = "REGRESSION"
                failures.append(
                    f"{phase}: p99 {now_p99:.2f} ms ({normalized:.2f} "
                    f"normalized) exceeds baseline {base_p99:.2f} ms x "
                    f"{args.serve_factor:g}")
            print(f"  {phase:12s} p99 {base_p99:9.2f} -> {now_p99:9.2f} ms "
                  f"(normalized {normalized:9.2f})  reject "
                  f"{current[phase].get('reject_rate', 0.0):7.2%}  {status}")

    if failures:
        print("\nFAIL (serve):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS (serve)")
    return 0


def check_cascade(current, args):
    """Gate a bench_cascade record: exact mode must stay bit-identical, the
    shortlist must keep recall, pruning must prune, accuracy must hold."""
    failures = []
    sizes = sorted((k for k in current
                    if k.startswith("ck_") and isinstance(current[k], dict)),
                   key=lambda k: current[k].get("rows", 0))
    if not sizes:
        print("FAIL (cascade): no ck_* sections in current run")
        return 1
    largest = sizes[-1]
    print(f"cascade search: {len(sizes)} plane sizes up to "
          f"{current[largest].get('rows', '?')} rows "
          f"[{current.get('kernel', '?')}, {current.get('threads', '?')} "
          f"thread(s)]")

    # Machine-independent: the workload is seeded, so these rates are
    # deterministic properties of the build, not of the host.
    for name in sizes:
        sec = current[name]
        line = (f"  {name:10s} thr {sec.get('threshold_speedup', 0.0):5.2f}x "
                f"exa {sec.get('exact_speedup', 0.0):5.2f}x "
                f"hit {sec.get('hit_rate', 0.0):7.4f} "
                f"fallback {sec.get('fallback_rate', 0.0):7.4f} "
                f"rescored {sec.get('rescored_fraction', 0.0):7.4f} "
                f"identical {sec.get('exact_identical', False)}")
        print(line)
        if not sec.get("exact_identical", False):
            failures.append(
                f"{name}: exact-mode argmax is NOT identical to exhaustive "
                f"— the margin-bound contract is broken")
        if sec.get("hit_rate", 0.0) < 0.99:
            failures.append(
                f"{name}: threshold hit_rate {sec.get('hit_rate', 0.0):.4f} "
                f"below the 0.99 floor — the shortlist is losing winners")
        if sec.get("fallback_rate", 0.0) > 0.05:
            failures.append(
                f"{name}: exact-mode fallback_rate "
                f"{sec.get('fallback_rate', 0.0):.4f} above 5% — the bound "
                f"has stopped certifying")
    if current[largest].get("rescored_fraction", 1.0) > 0.02:
        failures.append(
            f"{largest}: rescored_fraction "
            f"{current[largest]['rescored_fraction']:.4f} above 2% — stage 2 "
            f"is no longer a shortlist")
    acc = current.get("model_accuracy", {})
    delta = acc.get("delta", 0.0)
    print(f"  model accuracy: exhaustive {acc.get('exhaustive', 0.0):.4f} -> "
          f"threshold {acc.get('threshold', 0.0):.4f} (delta {delta:+.4f})")
    if delta > 0.005:
        failures.append(
            f"model_accuracy: threshold mode loses {delta:.4f} accuracy on "
            f"the fitted model — above the 0.5% budget")

    # Speedups are within-run ratios, so they transfer across machines.
    baseline_path = pathlib.Path(args.baseline_dir) / "BENCH_cascade.json"
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {baseline_path}")
    elif not baseline_path.exists():
        print(f"NOTICE: no cascade baseline ({baseline_path} missing); "
              f"speedup gate skipped. Create one with --update.")
    elif largest not in load(baseline_path):
        print(f"NOTICE: no baseline entry for '{largest}'; speedup gate "
              f"skipped. Re-baseline with --update.")
    else:
        base = load(baseline_path)[largest].get("threshold_speedup", 0.0)
        now = current[largest].get("threshold_speedup", 0.0)
        status = "OK"
        if base > 0 and now < base * (1.0 - args.threshold):
            status = "REGRESSION"
            failures.append(
                f"{largest}: threshold_speedup {now:.2f}x is "
                f"{100 * (1 - now / base):.1f}% below baseline {base:.2f}x")
        print(f"  {largest} threshold_speedup {base:.2f}x -> {now:.2f}x  "
              f"{status}")

    if failures:
        print("\nFAIL (cascade):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS (cascade)")
    return 0


def check_online(current, args):
    """Gate a bench_online record: swaps must not stall serving, training
    throughput must hold up against the baseline."""
    failures = []
    anchor = current.get("anchor_queries_per_sec", 0.0)
    print(f"online learning: anchor {anchor:.0f} q/s (no-swap serving)")

    # Machine-independent: continuous swapping may cost context rebuilds,
    # never a stall. Compare within this run, so host speed cancels out.
    no_swap_p99 = current.get("no_swap", {}).get("p99_ms", 0.0)
    swap_p99 = current.get("swap", {}).get("p99_ms", 0.0)
    swaps = current.get("swap", {}).get("swaps", 0)
    print(f"  p99 no-swap {no_swap_p99:.3f} ms -> swapping {swap_p99:.3f} ms "
          f"({swaps} swaps)")
    if swaps <= 0:
        failures.append("swap phase recorded zero swaps — nothing measured")
    if no_swap_p99 > 0 and swap_p99 > no_swap_p99 * args.swap_factor:
        failures.append(
            f"swap: p99 {swap_p99:.3f} ms exceeds no-swap p99 "
            f"{no_swap_p99:.3f} ms x {args.swap_factor:g} — hot swapping is "
            f"stalling the serve path")

    baseline_path = pathlib.Path(args.baseline_dir) / "BENCH_online.json"
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {baseline_path}")
    elif not baseline_path.exists():
        print(f"NOTICE: no online baseline ({baseline_path} missing); "
              f"training-throughput gate skipped. Create one with --update.")
    else:
        baseline = load(baseline_path)
        base_anchor = baseline.get("anchor_queries_per_sec", 0.0)
        # Serving throughput anchors host speed: the same scoring kernels
        # dominate both sides, so their ratio measures this runner.
        speed = anchor / base_anchor if base_anchor > 0 else 1.0
        print(f"runner speed vs baseline machine (serving anchor): "
              f"{speed:.2f}x")

        base_fit = baseline.get("partial_fit_samples_per_sec", 0.0)
        now_fit = current.get("partial_fit_samples_per_sec", 0.0)
        normalized = now_fit / speed if speed > 0 else now_fit
        ratio = normalized / base_fit if base_fit > 0 else float("inf")
        status = "OK"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                f"partial_fit: {now_fit:.0f} samples/s ({normalized:.0f} "
                f"normalized) is {100 * (1 - ratio):.1f}% below baseline "
                f"{base_fit:.0f}")
        print(f"  partial_fit {base_fit:12.0f} -> {now_fit:12.0f} samples/s "
              f"(normalized {normalized:12.0f}, {ratio:6.2%})  {status}")

        for key in ("cow_clone_ms", "publish_ms"):
            base_ms = baseline.get(key, 0.0)
            now_ms = current.get(key, 0.0)
            norm_ms = now_ms * speed
            status = "OK"
            if base_ms > 0 and norm_ms > base_ms * args.swap_factor:
                status = "REGRESSION"
                failures.append(
                    f"{key}: {now_ms:.3f} ms ({norm_ms:.3f} normalized) "
                    f"exceeds baseline {base_ms:.3f} ms x "
                    f"{args.swap_factor:g}")
            print(f"  {key:12s} {base_ms:9.3f} -> {now_ms:9.3f} ms "
                  f"(normalized {norm_ms:9.3f})  {status}")

    if failures:
        print("\nFAIL (online):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS (online)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional drop in normalized q/s")
    parser.add_argument("--serve-factor", type=float, default=3.0,
                        help="allowed capacity-normalized p99 growth factor "
                             "for serve records")
    parser.add_argument("--swap-factor", type=float, default=5.0,
                        help="allowed p99 growth under continuous swaps and "
                             "normalized COW-cost growth for online records")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline for the current kernel")
    parser.add_argument("--write-baseline", action="store_true",
                        help="alias of --update: write CURRENT_JSON as the "
                             "new committed baseline")
    args = parser.parse_args()
    args.update = args.update or args.write_baseline

    current = load(args.current)
    if current.get("bench") == "serve":
        return check_serve(current, args)
    if current.get("bench") == "cascade":
        return check_cascade(current, args)
    if current.get("bench") == "online":
        return check_online(current, args)
    kernel = current.get("kernel", "unknown")
    baseline_path = (pathlib.Path(args.baseline_dir) /
                     f"BENCH_micro_kernels.{kernel}.json")

    failures = []
    for name, record in sections(current).items():
        if not record.get("bit_identical", True):
            failures.append(f"{name}: batch kernel is NOT bit-identical")

    # Machine-independent: the rematerialized encoder plane's claim is O(1)
    # residency. The encode_remat section records the D=1M contrast (the
    # rematerialized figure measured off a live encoder, the materialized one
    # analytic); the ratio must stay >= 100x on every host and backend.
    remat = current.get("encode_remat", {})
    mat_resident = remat.get("resident_bytes_materialized_1m", 0)
    remat_resident = remat.get("resident_bytes_rematerialized_1m", 0)
    if mat_resident and remat_resident:
        ratio = mat_resident / remat_resident
        print(f"encode_remat residency at D=1M: materialized {mat_resident} B "
              f"vs rematerialized {remat_resident} B ({ratio:.0f}x)")
        if ratio < 100.0:
            failures.append(
                f"encode_remat: materialized/rematerialized resident ratio "
                f"{ratio:.1f}x at D=1M is below the 100x floor — the "
                f"rematerialized plane is no longer seed-only")
    elif remat:
        failures.append(
            "encode_remat: resident_bytes_*_1m fields missing — the "
            "residency contrast cannot be checked")

    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {baseline_path}")
    elif not baseline_path.exists():
        known = sorted(p.name for p in
                       pathlib.Path(args.baseline_dir).glob(
                           "BENCH_micro_kernels.*.json"))
        print(f"NOTICE: no baseline for kernel backend '{kernel}' "
              f"({baseline_path} missing); throughput gate skipped rather "
              f"than gating against another backend's numbers. "
              f"Committed baselines: {known or 'none'}. "
              f"Create one with --update.")
    else:
        baseline = load(baseline_path)
        common = [n for n in sections(baseline) if n in sections(current)]
        for name in sections(baseline):
            if name not in sections(current):
                failures.append(f"{name}: section missing from current run")
        # A kernel the current run measures but the baseline has no entry
        # for (a freshly added bench section) is skipped with a warning,
        # not failed: there is nothing to gate against yet. Re-baseline
        # with --update to start gating it.
        for name in sections(current):
            if name not in sections(baseline):
                print(f"NOTICE: no baseline entry for '{name}' in "
                      f"{baseline_path}; kernel skipped. Gate it by "
                      f"re-baselining with --update.")

        # Runner-speed factor: how fast this machine runs the (unchanged)
        # scalar reference loops relative to the baseline machine.
        factors = [current[n][SCALAR_KEY] / baseline[n][SCALAR_KEY]
                   for n in common if baseline[n].get(SCALAR_KEY, 0) > 0
                   and current[n].get(SCALAR_KEY, 0) > 0]
        machine = sorted(factors)[len(factors) // 2] if factors else 1.0
        print(f"runner speed vs baseline machine (scalar path): "
              f"{machine:.2f}x")

        for name in common:
            cur_backend = current[name].get("backend", kernel)
            base_backend = baseline[name].get("backend", cur_backend)
            if base_backend != cur_backend:
                print(f"NOTICE: '{name}' measured on backend "
                      f"'{cur_backend}' but baseline recorded "
                      f"'{base_backend}'; section skipped. Re-baseline "
                      f"with --update.")
                continue
            base = baseline[name][BATCH_KEY]
            now = current[name][BATCH_KEY]
            normalized = now / machine if machine > 0 else now
            ratio = normalized / base if base > 0 else float("inf")
            status = "OK"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {now:.0f} q/s ({normalized:.0f} normalized) "
                    f"is {100 * (1 - ratio):.1f}% below baseline "
                    f"{base:.0f} q/s")
            print(f"  {name:24s} {base:12.0f} -> {now:12.0f} q/s "
                  f"(normalized {normalized:12.0f}, {ratio:6.2%})  {status}")

    if failures:
        print(f"\nFAIL ({kernel}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nPASS ({kernel})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
