#!/usr/bin/env python3
"""Negative-compile smoke test for the clang thread-safety gate.

Proves the gate actually fires: a translation unit that touches a
MEMHD_GUARDED_BY member without its mutex MUST fail to compile under
`clang++ -Werror=thread-safety`, and the corrected twin MUST compile
cleanly. Without this, a typo in thread_annotations.hpp (say, a macro
silently expanding to nothing under clang too) would turn every annotation
in the tree into decoration and no CI job would notice.

Registered as the ctest "thread_safety_gate" test (see CMakeLists.txt) and
run explicitly by the CI clang leg. Exits 0 with a SKIP message when no
clang++ is on PATH (GCC-only local checkouts; the annotations are no-ops
there by design), 0 when the gate behaves, 1 when it does not.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# A GUARDED_BY member written with the lock held (clean) and without
# (violation). The violation twin differs ONLY by the MutexLock line, so a
# pass/fail difference can come only from the capability analysis.
TU_TEMPLATE = """
#include "src/common/sync.hpp"
#include "src/common/thread_annotations.hpp"

class Counter {{
 public:
  void increment() {{
    {lock}
    ++value_;
  }}

 private:
  memhd::common::Mutex mutex_;
  int value_ MEMHD_GUARDED_BY(mutex_) = 0;
}};

int main() {{
  Counter counter;
  counter.increment();
  return 0;
}}
"""


def find_clang() -> str | None:
    candidates = ["clang++"] + [f"clang++-{v}" for v in range(25, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_tu(clang: str, source: str, workdir: str, name: str):
    path = os.path.join(workdir, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(source)
    cmd = [
        clang, "-std=c++20", "-fsyntax-only",
        "-Wthread-safety", "-Werror=thread-safety",
        "-I", REPO_ROOT, path,
    ]
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    clang = find_clang()
    if clang is None:
        print("SKIP: clang++ not found on PATH (annotations are no-ops "
              "under GCC; CI's clang leg runs the real gate)")
        return 0

    with tempfile.TemporaryDirectory(prefix="memhd_tsa_gate_") as workdir:
        clean = compile_tu(
            clang,
            TU_TEMPLATE.format(lock="memhd::common::MutexLock lock(mutex_);"),
            workdir, "clean.cpp",
        )
        if clean.returncode != 0:
            print("FAIL: correctly-locked TU rejected — the annotations "
                  "are broken, not strict:", file=sys.stderr)
            print(clean.stderr, file=sys.stderr)
            return 1

        violation = compile_tu(
            clang, TU_TEMPLATE.format(lock="// lock deliberately omitted"),
            workdir, "violation.cpp",
        )
        if violation.returncode == 0:
            print("FAIL: GUARDED_BY violation compiled cleanly — the "
                  "thread-safety gate is not firing (macro expanding to "
                  "nothing under clang?)", file=sys.stderr)
            return 1
        if "-Wthread-safety" not in violation.stderr and \
                "thread-safety" not in violation.stderr:
            print("FAIL: violation TU failed for an unrelated reason:",
                  file=sys.stderr)
            print(violation.stderr, file=sys.stderr)
            return 1

    print("OK: clean TU accepted, seeded GUARDED_BY violation rejected "
          f"({os.path.basename(clang)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
