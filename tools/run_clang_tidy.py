#!/usr/bin/env python3
"""clang-tidy driver over compile_commands.json with a content-hash cache.

Runs the repo's .clang-tidy config (bugprone/concurrency/performance/
narrow-cppcoreguidelines, warnings-as-errors) across every src/ translation
unit in the compile database, in parallel, and caches per-file results so
re-runs on an unchanged tree are near-instant. CI keys its cache directory
on the compile-database hash (see .github/workflows/ci.yml), so a config,
flag, or header change invalidates exactly what it must.

Usage:
  tools/run_clang_tidy.py [-p build] [--cache-dir .clang-tidy-cache]
                          [--jobs N] [--fix] [paths...]

  paths: restrict to compile-database entries whose file matches one of the
         given path substrings (default: everything under src/).

Exit codes: 0 clean (or clang-tidy unavailable — prints SKIP so local GCC-
only checkouts and CI gates can share this entry point), 1 findings, 2
usage/setup error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_clang_tidy() -> str | None:
    """The newest clang-tidy on PATH (plain name first, then versioned)."""
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(25, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir: str) -> list[dict]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(
            f"error: {db_path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
            file=sys.stderr,
        )
        sys.exit(2)
    with open(db_path, "r", encoding="utf-8") as f:
        return json.load(f)


def select_entries(db: list[dict], paths: list[str]) -> list[dict]:
    """src/ TUs only (tests/benches are gtest/benchmark-macro heavy and not
    the contract surface), optionally narrowed to the given substrings."""
    seen: set[str] = set()
    entries = []
    for entry in db:
        file = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"])
        )
        rel = os.path.relpath(file, REPO_ROOT)
        if rel.startswith(".."):
            continue
        if not rel.startswith("src" + os.sep):
            continue
        if paths and not any(p in rel for p in paths):
            continue
        if rel in seen:
            continue
        seen.add(rel)
        entry = dict(entry)
        entry["abs_file"] = file
        entry["rel_file"] = rel
        entries.append(entry)
    return entries


def file_digest(hasher: "hashlib._Hash", path: str) -> None:
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 16), b""):
            hasher.update(chunk)


def cache_key(entry: dict, config_path: str, tidy_version: bytes) -> str:
    """Key on everything that can change the outcome for this TU: the
    clang-tidy binary, the .clang-tidy config, the compile command, the
    source, and every repo header it includes (cheap over-approximation:
    all src/ headers — a header edit invalidates the whole cache, which is
    exactly when a full re-run is wanted)."""
    hasher = hashlib.sha256()
    hasher.update(tidy_version)
    file_digest(hasher, config_path)
    hasher.update(entry.get("command", "").encode())
    file_digest(hasher, entry["abs_file"])
    src_root = os.path.join(REPO_ROOT, "src")
    for dirpath, _, files in sorted(os.walk(src_root)):
        for name in sorted(files):
            if name.endswith((".hpp", ".h", ".inc")):
                path = os.path.join(dirpath, name)
                hasher.update(os.path.relpath(path, REPO_ROOT).encode())
                file_digest(hasher, path)
    return hasher.hexdigest()


def run_one(
    tidy: str, entry: dict, build_dir: str, cache_dir: str | None,
    tidy_version: bytes, fix: bool,
) -> tuple[str, int, str]:
    config_path = os.path.join(REPO_ROOT, ".clang-tidy")
    key = None
    if cache_dir and not fix:
        key = cache_key(entry, config_path, tidy_version)
        marker = os.path.join(cache_dir, key)
        if os.path.exists(marker):
            return entry["rel_file"], 0, "(cached clean)"
    cmd = [tidy, "-p", build_dir, "--quiet"]
    if fix:
        cmd.append("--fix")
    cmd.append(entry["abs_file"])
    proc = subprocess.run(cmd, capture_output=True, text=True)
    output = (proc.stdout + proc.stderr).strip()
    if proc.returncode == 0 and key:
        os.makedirs(cache_dir, exist_ok=True)
        with open(os.path.join(cache_dir, key), "w", encoding="utf-8") as f:
            f.write(entry["rel_file"] + "\n")
    return entry["rel_file"], proc.returncode, output


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build")
    parser.add_argument("--cache-dir", default=None,
                        help="per-file clean-result cache (omit to disable)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count()))
    parser.add_argument("--fix", action="store_true",
                        help="apply clang-tidy fix-its (serial, no cache)")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        # GCC-only checkouts (like the dev container) share this entry point
        # with CI; absence is a skip, not a failure — CI installs clang.
        print("SKIP: clang-tidy not found on PATH")
        return 0

    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True).stdout.encode()
    db = load_compile_db(args.build_dir)
    entries = select_entries(db, args.paths)
    if not entries:
        print("error: no matching src/ entries in compile database",
              file=sys.stderr)
        return 2

    jobs = 1 if args.fix else args.jobs  # --fix races on shared headers
    failures = []
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(run_one, tidy, entry, args.build_dir, args.cache_dir,
                        version, args.fix)
            for entry in entries
        ]
        for future in futures:
            rel, code, output = future.result()
            status = "ok" if code == 0 else "FAIL"
            print(f"[{status}] {rel}")
            if code != 0:
                failures.append(rel)
                if output:
                    print(output)
    if failures:
        print(f"\nclang-tidy: {len(failures)}/{len(entries)} files with "
              "findings", file=sys.stderr)
        return 1
    print(f"clang-tidy: {len(entries)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
